//! Live, process-wide telemetry: a label-aware metric registry with
//! Prometheus-style text exposition and a JSON snapshot renderer.
//!
//! Everything else in `diy::metrics` is *post-hoc*: `RunReport`s
//! materialize after a batch run ends. This module is the *live* side — a
//! resident service ([`tess::MeshService`]-style) registers counters,
//! gauges, and windowed histograms here, updates them on its hot paths
//! (handles are `Arc`s over relaxed atomics; histograms take a short
//! mutex), and a scraper renders the whole registry at any moment without
//! stopping the service.
//!
//! ## Model
//!
//! A metric is identified by `(name, labels)` where `labels` is a sorted
//! list of `key=value` pairs: `("service.latency_ns", [kind=point])` and
//! `("service.latency_ns", [kind=box])` are two series of one metric.
//! Three instrument kinds:
//!
//! - **Counter** — monotonically non-decreasing `u64` (`inc`/`add`).
//! - **Gauge** — an `f64` that goes up and down (`set`).
//! - **Histogram** — a [`WindowedHistogram`]: a cumulative
//!   [`LogHistogram`] plus a ring of per-epoch windows. Rolling quantiles
//!   (p50/p99 over the last `window` epochs) answer "how slow is it *right
//!   now*", while the cumulative histogram answers "since start".
//!   [`advance_epoch`] rotates every registered ring (the exporter's
//!   scrape interval is the natural epoch).
//!
//! Registering the same `(name, labels)` twice returns a handle to the
//! same underlying instrument; registering it as a *different kind*
//! panics (a programming error, caught loudly).
//!
//! ## Renderers
//!
//! [`render_prometheus`] emits the classic text exposition (`# TYPE`
//! comments, `name{label="value"} value` samples; histograms as summaries
//! with rolling `quantile="0.5"`/`"0.99"` rows plus cumulative `_count` /
//! `_sum`). Metric names are sanitized for Prometheus ([`prom_name`]);
//! [`parse_exposition`] parses the format back for round-trip gates.
//! [`render_json`] emits the same snapshot as a JSON document with raw
//! (unsanitized) names; `bench_harness::json::escape` delegates to this
//! module's [`json_escape`], so both documents share one escaper.
//!
//! Both renderers sample the allocator ([`crate::mem`]) into built-in
//! `mem.*` / `proc.*` series at snapshot time, so a scrape always carries
//! live/peak allocation without anyone having to update them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::LogHistogram;

/// Environment variable gating the hot-path mirrors (`on`/`1` to enable).
/// The registry itself always works; this flag only gates *optional*
/// instrumentation like the per-tag transport mirror in `diy::metrics`,
/// so batch runs pay nothing unless asked.
pub const TELEMETRY_ENV: &str = "TESS_TELEMETRY";

/// Default ring length for windowed histograms (epochs of rolling view).
pub const DEFAULT_WINDOW: usize = 8;

const UNRESOLVED: u8 = u8::MAX;
static ENABLED: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// Is hot-path telemetry mirroring enabled? Resolves [`TELEMETRY_ENV`]
/// lazily on first call; [`set_enabled`] overrides at runtime.
pub fn enabled() -> bool {
    let v = ENABLED.load(Ordering::Relaxed);
    if v != UNRESOLVED {
        return v != 0;
    }
    let on = matches!(
        std::env::var(TELEMETRY_ENV).ok().as_deref(),
        Some("on") | Some("1") | Some("true")
    );
    let _ = ENABLED.compare_exchange(UNRESOLVED, on as u8, Ordering::Relaxed, Ordering::Relaxed);
    ENABLED.load(Ordering::Relaxed) != 0
}

/// Enable/disable hot-path mirroring process-wide; returns the previous
/// state.
pub fn set_enabled(on: bool) -> bool {
    let prev = ENABLED.swap(on as u8, Ordering::Relaxed);
    prev != UNRESOLVED && prev != 0
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// Monotonic counter handle (cheap to clone; all clones share the cell).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Gauge handle: an `f64` stored as bits in an atomic.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A cumulative [`LogHistogram`] plus a ring of per-epoch windows for
/// rolling quantiles. Mergeable counts everywhere; rotating is O(1).
#[derive(Clone, Debug)]
pub struct WindowedHistogram {
    ring: Vec<LogHistogram>,
    cur: usize,
    epoch: u64,
    total: LogHistogram,
}

impl WindowedHistogram {
    /// `window` epochs of rolling view (clamped to at least 1).
    pub fn new(window: usize) -> WindowedHistogram {
        WindowedHistogram {
            ring: vec![LogHistogram::new(); window.max(1)],
            cur: 0,
            epoch: 0,
            total: LogHistogram::new(),
        }
    }

    pub fn observe(&mut self, x: f64) {
        self.ring[self.cur].observe(x);
        self.total.observe(x);
    }

    pub fn observe_u64(&mut self, x: u64) {
        self.observe(x as f64);
    }

    /// Rotate to the next epoch: the oldest window is cleared and becomes
    /// current. Rolling views now cover the last `window` epochs again.
    pub fn advance(&mut self) {
        self.cur = (self.cur + 1) % self.ring.len();
        self.ring[self.cur] = LogHistogram::new();
        self.epoch += 1;
    }

    /// Epochs advanced so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn window(&self) -> usize {
        self.ring.len()
    }

    /// Merge of the ring: the distribution over the last `window` epochs.
    pub fn rolling(&self) -> LogHistogram {
        let mut m = LogHistogram::new();
        for h in &self.ring {
            m.merge(h);
        }
        m
    }

    /// Cumulative distribution since creation.
    pub fn total(&self) -> &LogHistogram {
        &self.total
    }
}

/// Histogram handle: observations go to the current window and the
/// cumulative total.
#[derive(Clone, Debug)]
pub struct Hist(Arc<Mutex<WindowedHistogram>>);

impl Hist {
    pub fn observe(&self, x: f64) {
        lock(&self.0).observe(x);
    }

    pub fn observe_u64(&self, x: u64) {
        lock(&self.0).observe(x as f64);
    }

    /// Clone out the current windowed state.
    pub fn read(&self) -> WindowedHistogram {
        lock(&self.0).clone()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

type LabelSet = Vec<(String, String)>;

enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Hist(Arc<Mutex<WindowedHistogram>>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Hist(_) => "histogram",
        }
    }
}

struct Registry {
    metrics: BTreeMap<(String, LabelSet), Instrument>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            metrics: BTreeMap::new(),
        })
    })
}

/// Non-poisoning lock: telemetry must keep working after an unrelated
/// panic on some other thread (a `#[should_panic]` test, a dying worker).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn canonical_labels(labels: &[(&str, &str)]) -> LabelSet {
    let mut v: LabelSet = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v.dedup_by(|a, b| a.0 == b.0);
    v
}

/// Register (or look up) a counter series.
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Counter {
    let key = (name.to_string(), canonical_labels(labels));
    let mut reg = lock(registry());
    match reg
        .metrics
        .entry(key)
        .or_insert_with(|| Instrument::Counter(Arc::new(AtomicU64::new(0))))
    {
        Instrument::Counter(c) => Counter(Arc::clone(c)),
        other => panic!(
            "telemetry metric {name:?} already registered as {}",
            other.kind()
        ),
    }
}

/// Register (or look up) a gauge series.
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Gauge {
    let key = (name.to_string(), canonical_labels(labels));
    let mut reg = lock(registry());
    match reg
        .metrics
        .entry(key)
        .or_insert_with(|| Instrument::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
    {
        Instrument::Gauge(g) => Gauge(Arc::clone(g)),
        other => panic!(
            "telemetry metric {name:?} already registered as {}",
            other.kind()
        ),
    }
}

/// Register (or look up) a windowed-histogram series with
/// [`DEFAULT_WINDOW`] epochs of rolling view.
pub fn histogram(name: &str, labels: &[(&str, &str)]) -> Hist {
    histogram_windowed(name, labels, DEFAULT_WINDOW)
}

/// Register (or look up) a windowed-histogram series. The `window` applies
/// only on first registration; later lookups return the existing ring.
pub fn histogram_windowed(name: &str, labels: &[(&str, &str)], window: usize) -> Hist {
    let key = (name.to_string(), canonical_labels(labels));
    let mut reg = lock(registry());
    match reg
        .metrics
        .entry(key)
        .or_insert_with(|| Instrument::Hist(Arc::new(Mutex::new(WindowedHistogram::new(window)))))
    {
        Instrument::Hist(h) => Hist(Arc::clone(h)),
        other => panic!(
            "telemetry metric {name:?} already registered as {}",
            other.kind()
        ),
    }
}

static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Rotate every registered windowed histogram to its next epoch and bump
/// the global telemetry epoch (exposed as `telemetry.epoch`).
pub fn advance_epoch() -> u64 {
    let reg = lock(registry());
    for inst in reg.metrics.values() {
        if let Instrument::Hist(h) = inst {
            lock(h).advance();
        }
    }
    EPOCH.fetch_add(1, Ordering::Relaxed) + 1
}

/// Global telemetry epoch ([`advance_epoch`] calls so far).
pub fn epoch() -> u64 {
    EPOCH.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Point-in-time value of one histogram series.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Cumulative sample count / sum / extrema since registration.
    pub n: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// Cumulative quantiles (log2-bucket representatives).
    pub p50: f64,
    pub p99: f64,
    /// Rolling view over the last `window` epochs.
    pub rolling_n: u64,
    pub rolling_p50: f64,
    pub rolling_p99: f64,
    pub window: usize,
}

/// Point-in-time value of one series.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Hist(HistSnapshot),
}

/// One `(name, labels, value)` row of a registry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    pub name: String,
    pub labels: LabelSet,
    pub value: MetricValue,
}

fn q_or_zero(h: &LogHistogram, q: f64) -> f64 {
    let v = h.quantile(q);
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn hist_snapshot(w: &WindowedHistogram) -> HistSnapshot {
    let total = w.total();
    let rolling = w.rolling();
    HistSnapshot {
        n: total.n(),
        sum: total.sum(),
        min: if total.n() == 0 { 0.0 } else { total.min() },
        max: if total.n() == 0 { 0.0 } else { total.max() },
        p50: q_or_zero(total, 0.5),
        p99: q_or_zero(total, 0.99),
        rolling_n: rolling.n(),
        rolling_p50: q_or_zero(&rolling, 0.5),
        rolling_p99: q_or_zero(&rolling, 0.99),
        window: w.window(),
    }
}

/// Sample the allocator and process into the built-in series, so every
/// snapshot carries live memory telemetry (`diy::mem` is the source).
fn sample_process() {
    let m = crate::mem::stats();
    gauge("mem.live_bytes", &[]).set_u64(m.live_bytes);
    gauge("mem.peak_live_bytes", &[]).set_u64(m.peak_live_bytes);
    gauge("mem.alloc_bytes_total", &[]).set_u64(m.alloc_bytes_total);
    gauge("mem.alloc_count", &[]).set_u64(m.alloc_count);
    let (rss_kb, hwm_kb) = crate::mem::proc_status_kb();
    gauge("proc.vm_rss_kb", &[]).set_u64(rss_kb);
    gauge("proc.vm_hwm_kb", &[]).set_u64(hwm_kb);
    gauge("telemetry.epoch", &[]).set_u64(epoch());
}

/// Snapshot every registered series (sorted by name, then labels). Samples
/// the built-in `mem.*` / `proc.*` gauges first so they are always fresh.
pub fn snapshot() -> Vec<MetricSample> {
    sample_process();
    let reg = lock(registry());
    reg.metrics
        .iter()
        .map(|((name, labels), inst)| MetricSample {
            name: name.clone(),
            labels: labels.clone(),
            value: match inst {
                Instrument::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                Instrument::Gauge(g) => {
                    MetricValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                }
                Instrument::Hist(h) => MetricValue::Hist(hist_snapshot(&lock(h))),
            },
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

/// Escape a string for embedding in a JSON string literal (no surrounding
/// quotes). This is the one escaper shared by the telemetry JSON renderer,
/// the structured log mode, and `bench_harness::json::escape`.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Sanitize a metric name for the Prometheus exposition charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other byte becomes `_` and a
/// leading digit gains a `_` prefix. Raw names (with dots) stay in the
/// JSON snapshot.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
            continue;
        }
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn prom_label_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `{k="v",...}` with an optional extra pair appended; empty labels (and
/// no extra) render as the empty string.
fn prom_labels(labels: &LabelSet, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), prom_label_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// `f64` in the shortest form that round-trips through `parse::<f64>()`
/// (Rust's float `Display` guarantees this).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

/// Render a snapshot as Prometheus text exposition.
pub fn render_prometheus_from(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    let mut last_typed = String::new();
    for s in samples {
        let name = prom_name(&s.name);
        match &s.value {
            MetricValue::Counter(v) => {
                if last_typed != name {
                    out.push_str(&format!("# TYPE {name} counter\n"));
                    last_typed = name.clone();
                }
                out.push_str(&format!("{name}{} {v}\n", prom_labels(&s.labels, None)));
            }
            MetricValue::Gauge(v) => {
                if last_typed != name {
                    out.push_str(&format!("# TYPE {name} gauge\n"));
                    last_typed = name.clone();
                }
                out.push_str(&format!(
                    "{name}{} {}\n",
                    prom_labels(&s.labels, None),
                    fmt_f64(*v)
                ));
            }
            MetricValue::Hist(h) => {
                if last_typed != name {
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    last_typed = name.clone();
                }
                // Rolling quantiles (the live view), cumulative count/sum.
                out.push_str(&format!(
                    "{name}{} {}\n",
                    prom_labels(&s.labels, Some(("quantile", "0.5"))),
                    fmt_f64(h.rolling_p50)
                ));
                out.push_str(&format!(
                    "{name}{} {}\n",
                    prom_labels(&s.labels, Some(("quantile", "0.99"))),
                    fmt_f64(h.rolling_p99)
                ));
                out.push_str(&format!(
                    "{name}_sum{} {}\n",
                    prom_labels(&s.labels, None),
                    fmt_f64(h.sum)
                ));
                out.push_str(&format!(
                    "{name}_count{} {}\n",
                    prom_labels(&s.labels, None),
                    h.n
                ));
            }
        }
    }
    out
}

/// Snapshot the registry and render Prometheus text exposition.
pub fn render_prometheus() -> String {
    render_prometheus_from(&snapshot())
}

fn json_labels(labels: &LabelSet) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        fmt_f64(v)
    } else {
        "null".to_string()
    }
}

/// Render a snapshot as a JSON document:
/// `{"epoch":N,"metrics":[{"name":...,"labels":{...},"kind":...,...}]}`.
/// Counters carry `"value"` (integer), gauges `"value"` (number),
/// histograms the full [`HistSnapshot`] field set.
pub fn render_json_from(samples: &[MetricSample]) -> String {
    let mut rows: Vec<String> = Vec::with_capacity(samples.len());
    for s in samples {
        let head = format!(
            "{{\"name\":\"{}\",\"labels\":{},",
            json_escape(&s.name),
            json_labels(&s.labels)
        );
        let body = match &s.value {
            MetricValue::Counter(v) => format!("\"kind\":\"counter\",\"value\":{v}}}"),
            MetricValue::Gauge(v) => {
                format!("\"kind\":\"gauge\",\"value\":{}}}", json_num(*v))
            }
            MetricValue::Hist(h) => format!(
                "\"kind\":\"histogram\",\"n\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p99\":{},\"rolling_n\":{},\"rolling_p50\":{},\
                 \"rolling_p99\":{},\"window\":{}}}",
                h.n,
                json_num(h.sum),
                json_num(h.min),
                json_num(h.max),
                json_num(h.p50),
                json_num(h.p99),
                h.rolling_n,
                json_num(h.rolling_p50),
                json_num(h.rolling_p99),
                h.window
            ),
        };
        rows.push(format!("    {head}{body}"));
    }
    format!(
        "{{\n  \"epoch\": {},\n  \"metrics\": [\n{}\n  ]\n}}\n",
        epoch(),
        rows.join(",\n")
    )
}

/// Snapshot the registry and render the JSON document.
pub fn render_json() -> String {
    render_json_from(&snapshot())
}

// ---------------------------------------------------------------------------
// Exposition parser (round-trip gate)
// ---------------------------------------------------------------------------

/// One parsed exposition sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpoSample {
    pub name: String,
    pub labels: LabelSet,
    pub value: f64,
}

/// Parse Prometheus text exposition back into samples. Comment (`#`) and
/// blank lines are skipped; malformed lines are errors. This is the gate
/// that proves [`render_prometheus`] emits the format it claims to.
pub fn parse_exposition(text: &str) -> Result<Vec<ExpoSample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: &str| format!("exposition line {}: {m}: {raw:?}", lineno + 1);
        let (series, value_str) = match line.rfind('}') {
            Some(close) => {
                let rest = line[close + 1..].trim();
                (&line[..=close], rest)
            }
            None => line
                .split_once(char::is_whitespace)
                .map(|(a, b)| (a, b.trim()))
                .ok_or_else(|| err("missing value"))?,
        };
        let (name, labels) = match series.find('{') {
            Some(open) => {
                if !series.ends_with('}') {
                    return Err(err("unterminated label set"));
                }
                let name = &series[..open];
                let body = &series[open + 1..series.len() - 1];
                (name, parse_labels(body).map_err(|m| err(&m))?)
            }
            None => (series, Vec::new()),
        };
        if name.is_empty()
            || !name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
        {
            return Err(err("bad metric name"));
        }
        let value: f64 = value_str.parse().map_err(|_| err("bad value"))?;
        out.push(ExpoSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(out)
}

fn parse_labels(body: &str) -> Result<LabelSet, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // skip separators / trailing comma
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty label key".into());
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?}: expected opening quote"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("label {key:?}: bad escape {other:?}")),
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return Err(format!("label {key:?}: unterminated value"));
        }
        labels.push((key, value));
    }
    labels.sort();
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Unit tests share the process-global registry with every other test
    // in this binary, so each uses its own `test.*`-prefixed names and
    // never asserts on the registry as a whole.

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = counter("test.unit.counter", &[("k", "v")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // same (name, labels) → same cell
        assert_eq!(counter("test.unit.counter", &[("k", "v")]).get(), 5);
        let g = gauge("test.unit.gauge", &[]);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_u64(7);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn labels_are_canonicalized() {
        let a = counter("test.unit.lbl", &[("b", "2"), ("a", "1")]);
        a.add(3);
        let b = counter("test.unit.lbl", &[("a", "1"), ("b", "2")]);
        assert_eq!(b.get(), 3, "label order must not split the series");
        let other = counter("test.unit.lbl", &[("a", "1"), ("b", "9")]);
        assert_eq!(other.get(), 0, "different values are a different series");
    }

    #[test]
    fn windowed_histogram_rolls_off_old_epochs() {
        let mut w = WindowedHistogram::new(2);
        w.observe(1000.0);
        assert_eq!(w.rolling().n(), 1);
        w.advance();
        w.observe(2.0);
        assert_eq!(w.rolling().n(), 2, "previous epoch still in window");
        w.advance();
        w.observe(2.0);
        let r = w.rolling();
        assert_eq!(r.n(), 2, "1000.0 aged out of the 2-epoch window");
        assert!(r.quantile(0.99) < 4.0);
        assert_eq!(w.total().n(), 3, "cumulative keeps everything");
        assert_eq!(w.epoch(), 2);
    }

    #[test]
    fn exposition_roundtrips_counters_gauges_hists() {
        let c = counter("test.expo.counter", &[("kind", "a b")]);
        c.add(42);
        let g = gauge("test.expo.gauge", &[]);
        g.set(1.5);
        let h = histogram("test.expo.hist", &[("kind", "x")]);
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let samples: Vec<MetricSample> = snapshot()
            .into_iter()
            .filter(|s| s.name.starts_with("test.expo."))
            .collect();
        let text = render_prometheus_from(&samples);
        let parsed = parse_exposition(&text).expect("exposition parses");
        let find = |name: &str, labels: &[(&str, &str)]| -> f64 {
            let want: LabelSet = labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect();
            parsed
                .iter()
                .find(|s| s.name == name && s.labels == want)
                .unwrap_or_else(|| panic!("{name} {labels:?} in {text}"))
                .value
        };
        assert_eq!(find("test_expo_counter", &[("kind", "a b")]), 42.0);
        assert_eq!(find("test_expo_gauge", &[]), 1.5);
        assert_eq!(find("test_expo_hist_count", &[("kind", "x")]), 100.0);
        assert_eq!(find("test_expo_hist_sum", &[("kind", "x")]), 5050.0);
        let p50 = find("test_expo_hist", &[("kind", "x"), ("quantile", "0.5")]);
        assert!(p50 > 0.0);
    }

    #[test]
    fn exposition_escapes_label_values() {
        let c = counter("test.esc.counter", &[("path", "a\\b\"c\nd")]);
        c.inc();
        let samples: Vec<MetricSample> = snapshot()
            .into_iter()
            .filter(|s| s.name.starts_with("test.esc."))
            .collect();
        let text = render_prometheus_from(&samples);
        let parsed = parse_exposition(&text).expect("escaped exposition parses");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].labels[0].1, "a\\b\"c\nd");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "no_value",
            "1leading_digit 3",
            "name{unterminated 3",
            "name{k=\"v} 3",
            "name{k=v\"} 3",
            "name{=\"v\"} 3",
            "name xyz",
            "na-me 3",
        ] {
            assert!(parse_exposition(bad).is_err(), "{bad:?} should not parse");
        }
        assert!(parse_exposition("# comment\n\nok_name 3\n").is_ok());
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("service.latency_ns"), "service_latency_ns");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name("a-b c"), "a_b_c");
        assert_eq!(prom_name("ok_name:x2"), "ok_name:x2");
    }

    #[test]
    fn json_escape_covers_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("\n\t\r"), "\\n\\t\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn json_snapshot_contains_mem_gauges() {
        let _keep = vec![0u8; 1 << 16];
        let doc = render_json();
        assert!(doc.contains("\"name\":\"mem.live_bytes\""));
        assert!(doc.contains("\"name\":\"mem.peak_live_bytes\""));
        assert!(doc.contains("\"name\":\"telemetry.epoch\""));
    }

    #[test]
    fn enabled_toggle_roundtrips() {
        let prev = set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(prev);
    }

    #[test]
    fn advance_epoch_rotates_registered_hists() {
        let h = histogram_windowed("test.adv.hist", &[], 2);
        h.observe(4.0);
        let before = epoch();
        advance_epoch();
        advance_epoch();
        assert_eq!(epoch(), before + 2);
        let w = h.read();
        assert_eq!(w.rolling().n(), 0, "sample aged out after window epochs");
        assert_eq!(w.total().n(), 1);
    }
}
