//! Collective parallel block I/O to a single shared file.
//!
//! Mirrors DIY's I/O layer: every rank writes its blocks' payloads at
//! disjoint offsets computed by an exclusive scan, then rank 0 appends a
//! footer indexing every block. A file written at one rank count can be read
//! back at any other rank count (blocks are addressed by gid, not rank).
//!
//! Layout (version 2):
//!
//! ```text
//! [magic u64][version u32][flags u32]              header (16 bytes)
//! [block payloads ...]                             waves at scan offsets
//! [n u64][(gid, offset, len, checksum)*n]          footer (u64 each)
//! [footer_offset u64][footer_hash u64][n u64][magic u64]   trailer (32 bytes)
//! ```
//!
//! Every byte of the file is covered by some validation: the header fields
//! are checked exactly, each payload carries an FNV-1a checksum in its
//! footer record, the footer is covered by `footer_hash`, and every
//! trailer field is either checked against the magic/count or used to
//! locate the hashed footer. Corrupting or truncating any single byte
//! therefore surfaces as a typed [`io::Error`] from the readers, never a
//! panic or silently wrong data (see `crates/diy/tests/blockfile_fuzz.rs`).
//!
//! Writes go through [`BlockFileWriter`] in collective *waves*: each wave
//! is one exclusive scan that lands every rank's payloads at disjoint
//! offsets after the previous wave's, so a streaming driver can write
//! blocks as they finish instead of accumulating them (the one-shot
//! [`write_blocks`] is a single-wave special case). The footer is ordered
//! canonically by gid regardless of which rank wrote which block in which
//! wave.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom};
use std::os::unix::fs::FileExt;
use std::path::Path;

use crate::codec::{Decode, Encode, Reader};
use crate::comm::World;

const MAGIC: u64 = 0x5445_5353_4449_5931; // "TESSDIY1"
const VERSION: u32 = 2;
const HEADER_LEN: u64 = 16;
const TRAILER_LEN: u64 = 32;

/// FNV-1a over `bytes` — the file format's checksum. Not cryptographic;
/// it exists to turn bit rot and torn writes into typed errors.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One footer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRecord {
    pub gid: u64,
    pub offset: u64,
    pub len: u64,
    /// FNV-1a of the payload bytes.
    pub checksum: u64,
}

impl Encode for BlockRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.gid.encode(buf);
        self.offset.encode(buf);
        self.len.encode(buf);
        self.checksum.encode(buf);
    }
}

impl Decode for BlockRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, crate::codec::CodecError> {
        Ok(BlockRecord {
            gid: u64::decode(r)?,
            offset: u64::decode(r)?,
            len: u64::decode(r)?,
            checksum: u64::decode(r)?,
        })
    }
}

/// Collective block-streamed writer: create the file once, write any
/// number of waves, then finish. Every method is collective over the
/// world — all ranks must call it the same number of times (a rank with
/// nothing to contribute passes an empty wave).
pub struct BlockFileWriter {
    file: File,
    records: Vec<BlockRecord>,
    /// End of the payload region so far — identical on every rank because
    /// each wave advances it by the wave's *global* byte count.
    cursor: u64,
}

impl BlockFileWriter {
    /// Create/truncate `path` and write the header (collective).
    pub fn create(world: &mut World, path: &Path) -> io::Result<BlockFileWriter> {
        // Rank 0 creates/truncates; everyone else opens after the barrier.
        if world.rank() == 0 {
            let file = File::create(path)?;
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            MAGIC.encode(&mut header);
            VERSION.encode(&mut header);
            0u32.encode(&mut header); // flags, must be zero
            file.write_all_at(&header, 0)?;
        }
        world.barrier();
        let file = OpenOptions::new().write(true).open(path)?;
        Ok(BlockFileWriter {
            file,
            records: Vec::new(),
            cursor: HEADER_LEN,
        })
    }

    /// Write one wave of `(gid, payload)` blocks at disjoint offsets after
    /// everything already written (collective: one exclusive scan).
    pub fn write_wave(&mut self, world: &mut World, blocks: &[(u64, Vec<u8>)]) -> io::Result<()> {
        let my_size: u64 = blocks.iter().map(|(_, b)| b.len() as u64).sum();
        let (my_offset, total) = world.exclusive_scan_u64(my_size);
        let mut off = self.cursor + my_offset;
        for (gid, payload) in blocks {
            self.file.write_all_at(payload, off)?;
            self.records.push(BlockRecord {
                gid: *gid,
                offset: off,
                len: payload.len() as u64,
                checksum: fnv1a(payload),
            });
            off += payload.len() as u64;
        }
        self.cursor += total;
        Ok(())
    }

    /// Payload bytes this rank has written so far.
    pub fn local_payload_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len).sum()
    }

    /// Blocks this rank has written so far.
    pub fn local_blocks(&self) -> u64 {
        self.records.len() as u64
    }

    /// Gather the index, write footer + trailer, and return the total file
    /// bytes (collective; the same value on every rank).
    pub fn finish(self, world: &mut World) -> io::Result<u64> {
        // all_gather (not gather-to-0) so every rank derives the identical
        // canonical footer and total independently.
        let gathered: Vec<Vec<BlockRecord>> = world.all_gather(&self.records);
        let mut all: Vec<BlockRecord> = gathered.into_iter().flatten().collect();
        all.sort_by_key(|r| r.gid);
        if all.windows(2).any(|w| w[0].gid == w[1].gid) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "duplicate gid written to block file",
            ));
        }
        let footer = all.to_bytes();
        if world.rank() == 0 {
            let mut tail = footer.clone();
            self.cursor.encode(&mut tail); // footer_offset
            fnv1a(&footer).encode(&mut tail);
            (all.len() as u64).encode(&mut tail);
            MAGIC.encode(&mut tail);
            self.file.write_all_at(&tail, self.cursor)?;
        }
        // the file is complete on every rank's return
        world.barrier();
        Ok(self.cursor + footer.len() as u64 + TRAILER_LEN)
    }
}

/// Collectively write `blocks` (gid, payload) from every rank into `path`
/// as a single wave.
///
/// Returns the total bytes written (same value on every rank). Must be
/// called by all ranks of `world`.
pub fn write_blocks(world: &mut World, path: &Path, blocks: &[(u64, Vec<u8>)]) -> io::Result<u64> {
    let mut w = BlockFileWriter::create(world, path)?;
    w.write_wave(world, blocks)?;
    w.finish(world)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Read and fully validate the footer index of a block file: magic,
/// version, flags, trailer, footer hash, record count, canonical gid
/// order, and per-record bounds. Payload checksums are verified by
/// [`read_block`].
pub fn read_index(path: &Path) -> io::Result<Vec<BlockRecord>> {
    let mut file = File::open(path)?;
    let flen = file.seek(SeekFrom::End(0))?;
    if flen < HEADER_LEN + TRAILER_LEN {
        return Err(bad("file too short"));
    }

    let mut header = [0u8; HEADER_LEN as usize];
    file.read_exact_at(&mut header, 0)?;
    let mut r = Reader::new(&header);
    if u64::decode(&mut r).map_err(invalid)? != MAGIC {
        return Err(bad("bad header magic"));
    }
    let version = u32::decode(&mut r).map_err(invalid)?;
    if version != VERSION {
        return Err(bad(&format!("unsupported version {version}")));
    }
    if u32::decode(&mut r).map_err(invalid)? != 0 {
        return Err(bad("nonzero header flags"));
    }

    let mut trailer = [0u8; TRAILER_LEN as usize];
    file.read_exact_at(&mut trailer, flen - TRAILER_LEN)?;
    let mut r = Reader::new(&trailer);
    let footer_offset = u64::decode(&mut r).map_err(invalid)?;
    let footer_hash = u64::decode(&mut r).map_err(invalid)?;
    let count = u64::decode(&mut r).map_err(invalid)?;
    if u64::decode(&mut r).map_err(invalid)? != MAGIC {
        return Err(bad("bad trailer magic"));
    }
    if footer_offset < HEADER_LEN || footer_offset > flen - TRAILER_LEN {
        return Err(bad("footer offset out of bounds"));
    }

    let footer_len = flen - TRAILER_LEN - footer_offset;
    let mut footer = vec![0u8; footer_len as usize];
    file.read_exact_at(&mut footer, footer_offset)?;
    if fnv1a(&footer) != footer_hash {
        return Err(bad("footer checksum mismatch"));
    }
    let mut r = Reader::new(&footer);
    let records = Vec::<BlockRecord>::decode(&mut r).map_err(invalid)?;
    if r.remaining() != 0 {
        return Err(bad("trailing bytes after footer"));
    }
    if records.len() as u64 != count {
        return Err(bad("record count mismatch"));
    }
    if records.windows(2).any(|w| w[0].gid >= w[1].gid) {
        return Err(bad("footer gids not strictly increasing"));
    }
    for rec in &records {
        let end = rec.offset.checked_add(rec.len);
        if rec.offset < HEADER_LEN || end.is_none() || end.unwrap() > footer_offset {
            return Err(bad("block record out of bounds"));
        }
    }
    Ok(records)
}

/// Read one block's payload and verify its checksum.
pub fn read_block(path: &Path, record: &BlockRecord) -> io::Result<Vec<u8>> {
    let file = File::open(path)?;
    let mut buf = vec![0u8; record.len as usize];
    file.read_exact_at(&mut buf, record.offset)?;
    if fnv1a(&buf) != record.checksum {
        return Err(bad(&format!(
            "payload checksum mismatch (gid {})",
            record.gid
        )));
    }
    Ok(buf)
}

/// Read all blocks sequentially (serial convenience).
pub fn read_all_blocks(path: &Path) -> io::Result<Vec<(u64, Vec<u8>)>> {
    let index = read_index(path)?;
    index
        .iter()
        .map(|r| Ok((r.gid, read_block(path, r)?)))
        .collect()
}

/// Collective read: each rank reads the blocks a contiguous partition of the
/// index assigns to it (independent of the writer's rank count).
pub fn read_blocks_parallel(world: &mut World, path: &Path) -> io::Result<Vec<(u64, Vec<u8>)>> {
    let index = read_index(path)?;
    let n = index.len();
    let lo = world.rank() * n / world.nranks();
    let hi = (world.rank() + 1) * n / world.nranks();
    index[lo..hi]
        .iter()
        .map(|r| Ok((r.gid, read_block(path, r)?)))
        .collect()
}

fn invalid(e: crate::codec::CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Runtime;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("diy-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_single_rank() {
        let path = tmpfile("single.diy");
        Runtime::run(1, |w| {
            let blocks = vec![(0u64, vec![1u8, 2, 3]), (1u64, vec![9u8; 100])];
            write_blocks(w, &path, &blocks).unwrap();
        });
        let back = read_all_blocks(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], (0, vec![1, 2, 3]));
        assert_eq!(back[1], (1, vec![9u8; 100]));
    }

    #[test]
    fn roundtrip_multi_rank_disjoint_offsets() {
        let path = tmpfile("multi.diy");
        Runtime::run(4, |w| {
            // each rank writes 2 blocks with rank-dependent sizes
            let blocks: Vec<(u64, Vec<u8>)> = (0..2)
                .map(|i| {
                    let gid = (w.rank() * 2 + i) as u64;
                    (gid, vec![gid as u8; 10 + w.rank() * 7])
                })
                .collect();
            write_blocks(w, &path, &blocks).unwrap();
        });
        let back = read_all_blocks(&path).unwrap();
        assert_eq!(back.len(), 8);
        for (gid, payload) in back {
            let rank = (gid / 2) as usize;
            assert_eq!(payload, vec![gid as u8; 10 + rank * 7]);
        }
    }

    #[test]
    fn index_is_sorted_by_gid() {
        let path = tmpfile("sorted.diy");
        Runtime::run(3, |w| {
            // write gids in reverse order per rank
            let gid = (2 - w.rank()) as u64;
            let blocks = vec![(gid, vec![gid as u8])];
            write_blocks(w, &path, &blocks).unwrap();
        });
        let idx = read_index(&path).unwrap();
        let gids: Vec<u64> = idx.iter().map(|r| r.gid).collect();
        assert_eq!(gids, vec![0, 1, 2]);
    }

    #[test]
    fn parallel_read_covers_all_blocks_any_rank_count() {
        let path = tmpfile("reread.diy");
        Runtime::run(4, |w| {
            let gid = w.rank() as u64;
            write_blocks(w, &path, &[(gid, vec![gid as u8; 5])]).unwrap();
        });
        // read back with a different rank count
        let per_rank = Runtime::run(3, |w| read_blocks_parallel(w, &path).unwrap());
        let mut all: Vec<u64> = per_rank.into_iter().flatten().map(|(g, _)| g).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let path = tmpfile("corrupt.diy");
        std::fs::write(
            &path,
            b"not a block file, definitely too weird, and long enough",
        )
        .unwrap();
        assert!(read_index(&path).is_err());
        std::fs::write(&path, b"tiny").unwrap();
        assert!(read_index(&path).is_err());
    }

    #[test]
    fn empty_rank_participates() {
        let path = tmpfile("empty-rank.diy");
        Runtime::run(3, |w| {
            // rank 1 writes nothing
            let blocks: Vec<(u64, Vec<u8>)> = if w.rank() == 1 {
                vec![]
            } else {
                vec![(w.rank() as u64, vec![7u8; 3])]
            };
            write_blocks(w, &path, &blocks).unwrap();
        });
        let back = read_all_blocks(&path).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn waved_writes_match_one_shot_content() {
        let one = tmpfile("oneshot.diy");
        let waved = tmpfile("waved.diy");
        let blocks_of = |rank: usize| -> Vec<(u64, Vec<u8>)> {
            (0..3)
                .map(|i| {
                    let gid = (rank * 3 + i) as u64;
                    (gid, vec![gid as u8; 5 + (gid as usize * 13) % 40])
                })
                .collect()
        };
        Runtime::run(2, |w| {
            write_blocks(w, &one, &blocks_of(w.rank())).unwrap();
        });
        let totals = Runtime::run(2, |w| {
            // three waves with uneven per-rank splits, including an empty one
            let blocks = blocks_of(w.rank());
            let mut writer = BlockFileWriter::create(w, &waved).unwrap();
            writer.write_wave(w, &blocks[..1]).unwrap();
            let rest: &[(u64, Vec<u8>)] = if w.rank() == 0 { &blocks[1..] } else { &[] };
            writer.write_wave(w, rest).unwrap();
            let rest2: &[(u64, Vec<u8>)] = if w.rank() == 0 { &[] } else { &blocks[1..] };
            writer.write_wave(w, rest2).unwrap();
            assert_eq!(writer.local_blocks(), 3);
            writer.finish(w).unwrap()
        });
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[0], std::fs::metadata(&waved).unwrap().len());
        // same logical content, canonical order, regardless of wave layout
        assert_eq!(
            read_all_blocks(&one).unwrap(),
            read_all_blocks(&waved).unwrap()
        );
    }

    #[test]
    fn reported_total_matches_file_length() {
        let path = tmpfile("total.diy");
        let totals = Runtime::run(3, |w| {
            let gid = w.rank() as u64;
            write_blocks(w, &path, &[(gid, vec![gid as u8; 11 + w.rank()])]).unwrap()
        });
        assert_eq!(totals[0], std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn payload_corruption_is_detected() {
        let path = tmpfile("flip.diy");
        Runtime::run(1, |w| {
            write_blocks(w, &path, &[(0u64, vec![5u8; 64]), (1u64, vec![6u8; 64])]).unwrap();
        });
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN as usize + 10] ^= 0x40; // inside block 0's payload
        std::fs::write(&path, &bytes).unwrap();
        let idx = read_index(&path).unwrap(); // index itself is intact
        let err = read_block(&path, &idx[0]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(read_all_blocks(&path).is_err());
    }

    #[test]
    fn version_and_flags_are_enforced() {
        let path = tmpfile("version.diy");
        Runtime::run(1, |w| {
            write_blocks(w, &path, &[(0u64, vec![1u8; 8])]).unwrap();
        });
        let pristine = std::fs::read(&path).unwrap();
        // version byte
        let mut bytes = pristine.clone();
        bytes[8] = 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_index(&path)
            .unwrap_err()
            .to_string()
            .contains("version"));
        // flags byte
        let mut bytes = pristine.clone();
        bytes[12] = 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_index(&path).unwrap_err().to_string().contains("flags"));
    }

    #[test]
    fn footer_and_trailer_corruption_is_detected() {
        let path = tmpfile("tail.diy");
        Runtime::run(1, |w| {
            write_blocks(w, &path, &[(0u64, vec![1u8; 32]), (7u64, vec![2u8; 32])]).unwrap();
        });
        let pristine = std::fs::read(&path).unwrap();
        let n = pristine.len();
        // every byte from the footer to the end of the file
        for i in (HEADER_LEN as usize + 64)..n {
            let mut bytes = pristine.clone();
            bytes[i] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
            assert!(read_index(&path).is_err(), "flip at byte {i} undetected");
        }
    }
}
