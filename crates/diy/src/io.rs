//! Collective parallel block I/O to a single shared file.
//!
//! Mirrors DIY's I/O layer: every rank writes its blocks' payloads at
//! disjoint offsets computed by an exclusive scan, then rank 0 appends a
//! footer indexing every block. A file written at one rank count can be read
//! back at any other rank count (blocks are addressed by gid, not rank).
//!
//! Layout:
//!
//! ```text
//! [magic u64][version u32][pad u32]          header (16 bytes)
//! [block payloads ...]                       each rank at its scan offset
//! [n u64][(gid u64, offset u64, len u64)*n]  footer
//! [footer_offset u64][magic u64]             trailer (16 bytes)
//! ```

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom};
use std::os::unix::fs::FileExt;
use std::path::Path;

use crate::codec::{Decode, Encode, Reader};
use crate::comm::World;

const MAGIC: u64 = 0x5445_5353_4449_5931; // "TESSDIY1"
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 16;
const TRAILER_LEN: u64 = 16;

/// One footer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRecord {
    pub gid: u64,
    pub offset: u64,
    pub len: u64,
}

impl Encode for BlockRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.gid.encode(buf);
        self.offset.encode(buf);
        self.len.encode(buf);
    }
}

impl Decode for BlockRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, crate::codec::CodecError> {
        Ok(BlockRecord {
            gid: u64::decode(r)?,
            offset: u64::decode(r)?,
            len: u64::decode(r)?,
        })
    }
}

/// Collectively write `blocks` (gid, payload) from every rank into `path`.
///
/// Returns the total bytes written (same value on every rank). Must be
/// called by all ranks of `world`.
pub fn write_blocks(world: &mut World, path: &Path, blocks: &[(u64, Vec<u8>)]) -> io::Result<u64> {
    let my_size: u64 = blocks.iter().map(|(_, b)| b.len() as u64).sum();
    let (my_offset, total_payload) = world.exclusive_scan_u64(my_size);

    // Rank 0 creates/truncates; everyone else opens after the barrier.
    if world.rank() == 0 {
        File::create(path)?;
    }
    world.barrier();
    let file = OpenOptions::new().write(true).open(path)?;

    // Header.
    if world.rank() == 0 {
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        MAGIC.encode(&mut header);
        VERSION.encode(&mut header);
        0u32.encode(&mut header);
        file.write_all_at(&header, 0)?;
    }

    // Payloads at scan offsets.
    let mut records: Vec<BlockRecord> = Vec::with_capacity(blocks.len());
    let mut off = HEADER_LEN + my_offset;
    for (gid, payload) in blocks {
        file.write_all_at(payload, off)?;
        records.push(BlockRecord {
            gid: *gid,
            offset: off,
            len: payload.len() as u64,
        });
        off += payload.len() as u64;
    }

    // Footer: gather all records at rank 0 and append.
    let gathered = world.gather(0, &records.clone());
    if world.rank() == 0 {
        let mut all: Vec<BlockRecord> = gathered.expect("root").into_iter().flatten().collect();
        all.sort_by_key(|r| r.gid);
        let footer_offset = HEADER_LEN + total_payload;
        let mut footer = Vec::new();
        all.encode(&mut footer);
        footer_offset.encode(&mut footer);
        MAGIC.encode(&mut footer);
        file.write_all_at(&footer, footer_offset)?;
    }
    world.barrier();
    // every rank recomputes the global record count for the return value
    let n: u64 = world.all_reduce(blocks.len() as u64, |a, b| a + b);
    let footer_len = 8 + 24 * n; // count prefix + records
    Ok(HEADER_LEN + total_payload + footer_len + TRAILER_LEN)
}

/// Read the footer index of a block file.
pub fn read_index(path: &Path) -> io::Result<Vec<BlockRecord>> {
    let mut file = File::open(path)?;
    let flen = file.seek(SeekFrom::End(0))?;
    if flen < HEADER_LEN + TRAILER_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "file too short"));
    }
    let mut trailer = [0u8; TRAILER_LEN as usize];
    file.read_exact_at(&mut trailer, flen - TRAILER_LEN)?;
    let mut r = Reader::new(&trailer);
    let footer_offset = u64::decode(&mut r).map_err(invalid)?;
    let magic = u64::decode(&mut r).map_err(invalid)?;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trailer magic",
        ));
    }
    let mut header = [0u8; 8];
    file.read_exact_at(&mut header, 0)?;
    if u64::from_le_bytes(header) != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad header magic",
        ));
    }
    let footer_len = flen - TRAILER_LEN - footer_offset;
    let mut footer = vec![0u8; footer_len as usize];
    file.read_exact_at(&mut footer, footer_offset)?;
    let mut r = Reader::new(&footer);
    Vec::<BlockRecord>::decode(&mut r).map_err(invalid)
}

/// Read one block's payload.
pub fn read_block(path: &Path, record: &BlockRecord) -> io::Result<Vec<u8>> {
    let file = File::open(path)?;
    let mut buf = vec![0u8; record.len as usize];
    file.read_exact_at(&mut buf, record.offset)?;
    Ok(buf)
}

/// Read all blocks sequentially (serial convenience).
pub fn read_all_blocks(path: &Path) -> io::Result<Vec<(u64, Vec<u8>)>> {
    let index = read_index(path)?;
    index
        .iter()
        .map(|r| Ok((r.gid, read_block(path, r)?)))
        .collect()
}

/// Collective read: each rank reads the blocks a contiguous partition of the
/// index assigns to it (independent of the writer's rank count).
pub fn read_blocks_parallel(world: &mut World, path: &Path) -> io::Result<Vec<(u64, Vec<u8>)>> {
    let index = read_index(path)?;
    let n = index.len();
    let lo = world.rank() * n / world.nranks();
    let hi = (world.rank() + 1) * n / world.nranks();
    index[lo..hi]
        .iter()
        .map(|r| Ok((r.gid, read_block(path, r)?)))
        .collect()
}

fn invalid(e: crate::codec::CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Runtime;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("diy-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_single_rank() {
        let path = tmpfile("single.diy");
        Runtime::run(1, |w| {
            let blocks = vec![(0u64, vec![1u8, 2, 3]), (1u64, vec![9u8; 100])];
            write_blocks(w, &path, &blocks).unwrap();
        });
        let back = read_all_blocks(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], (0, vec![1, 2, 3]));
        assert_eq!(back[1], (1, vec![9u8; 100]));
    }

    #[test]
    fn roundtrip_multi_rank_disjoint_offsets() {
        let path = tmpfile("multi.diy");
        Runtime::run(4, |w| {
            // each rank writes 2 blocks with rank-dependent sizes
            let blocks: Vec<(u64, Vec<u8>)> = (0..2)
                .map(|i| {
                    let gid = (w.rank() * 2 + i) as u64;
                    (gid, vec![gid as u8; 10 + w.rank() * 7])
                })
                .collect();
            write_blocks(w, &path, &blocks).unwrap();
        });
        let back = read_all_blocks(&path).unwrap();
        assert_eq!(back.len(), 8);
        for (gid, payload) in back {
            let rank = (gid / 2) as usize;
            assert_eq!(payload, vec![gid as u8; 10 + rank * 7]);
        }
    }

    #[test]
    fn index_is_sorted_by_gid() {
        let path = tmpfile("sorted.diy");
        Runtime::run(3, |w| {
            // write gids in reverse order per rank
            let gid = (2 - w.rank()) as u64;
            let blocks = vec![(gid, vec![gid as u8])];
            write_blocks(w, &path, &blocks).unwrap();
        });
        let idx = read_index(&path).unwrap();
        let gids: Vec<u64> = idx.iter().map(|r| r.gid).collect();
        assert_eq!(gids, vec![0, 1, 2]);
    }

    #[test]
    fn parallel_read_covers_all_blocks_any_rank_count() {
        let path = tmpfile("reread.diy");
        Runtime::run(4, |w| {
            let gid = w.rank() as u64;
            write_blocks(w, &path, &[(gid, vec![gid as u8; 5])]).unwrap();
        });
        // read back with a different rank count
        let per_rank = Runtime::run(3, |w| read_blocks_parallel(w, &path).unwrap());
        let mut all: Vec<u64> = per_rank.into_iter().flatten().map(|(g, _)| g).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let path = tmpfile("corrupt.diy");
        std::fs::write(&path, b"not a block file, definitely too weird").unwrap();
        assert!(read_index(&path).is_err());
        std::fs::write(&path, b"tiny").unwrap();
        assert!(read_index(&path).is_err());
    }

    #[test]
    fn empty_rank_participates() {
        let path = tmpfile("empty-rank.diy");
        Runtime::run(3, |w| {
            // rank 1 writes nothing
            let blocks: Vec<(u64, Vec<u8>)> = if w.rank() == 1 {
                vec![]
            } else {
                vec![(w.rank() as u64, vec![7u8; 3])]
            };
            write_blocks(w, &path, &blocks).unwrap();
        });
        let back = read_all_blocks(&path).unwrap();
        assert_eq!(back.len(), 2);
    }
}
