//! Neighborhood data exchange.
//!
//! Implements the two communication patterns the paper added to DIY
//! (§III-C1):
//!
//! * **Periodic boundary neighbors** — items sent across a periodic seam
//!   have their coordinates translated to the far side of the domain via a
//!   caller-visible transform callback.
//! * **Targeted exchange** — an item is sent only to those neighbors whose
//!   block is within the ghost distance of the item's location ("destination
//!   neighbor identification based on proximity to a target point").

use std::collections::{HashMap, HashSet};

use geometry::Vec3;

use crate::codec::{Decode, Encode};
use crate::comm::World;
use crate::decomposition::{Assignment, Decomposition, Neighbor};

/// Helper binding a decomposition and an assignment for exchanges.
///
/// Neighbor links are precomputed per block at construction:
/// [`Decomposition::neighbors`] runs a box-adjacency scan over all blocks,
/// and the targeted-destination test below runs once per particle.
pub struct NeighborExchange<'a> {
    pub dec: &'a Decomposition,
    pub asn: &'a Assignment,
    links: Vec<Vec<Neighbor>>,
}

impl<'a> NeighborExchange<'a> {
    pub fn new(dec: &'a Decomposition, asn: &'a Assignment) -> Self {
        assert_eq!(dec.nblocks(), asn.nblocks);
        let links = (0..dec.nblocks() as u64)
            .map(|g| dec.neighbors(g))
            .collect();
        NeighborExchange { dec, asn, links }
    }

    /// The neighbor links of `gid` whose blocks lie within `ghost` of point
    /// `p` (targeted destinations). For a periodic link the proximity test is
    /// performed in the neighbor's frame (`p + xform`).
    pub fn destinations_near(&self, gid: u64, p: Vec3, ghost: f64) -> Vec<Neighbor> {
        self.destinations_near_by(gid, p, |_| Some(ghost))
    }

    /// Like [`destinations_near`](Self::destinations_near), but with a
    /// per-destination ghost distance: `ghost_of(dest gid)` returns the
    /// distance that destination currently wants, or `None` to skip it
    /// entirely. This is how adaptive exchange rounds target only the
    /// blocks that requested a larger halo.
    pub fn destinations_near_by(
        &self,
        gid: u64,
        p: Vec3,
        ghost_of: impl Fn(u64) -> Option<f64>,
    ) -> Vec<Neighbor> {
        self.links[gid as usize]
            .iter()
            .filter(|n| {
                ghost_of(n.gid).is_some_and(|ghost| {
                    let q = p + n.xform;
                    self.dec.block_bounds(n.gid).distance(q) <= ghost
                })
            })
            .copied()
            .collect()
    }

    /// Exchange typed items between blocks.
    ///
    /// `outgoing` maps a destination block gid to the items headed there
    /// (already transformed into the destination's frame by the caller).
    /// Returns the items received for each block owned by this rank, sorted
    /// by (source rank, send order) for determinism.
    pub fn exchange<T: Encode + Decode>(
        &self,
        world: &mut World,
        outgoing: Vec<(u64, T)>,
    ) -> HashMap<u64, Vec<T>> {
        self.exchange_inner(world, outgoing, None)
    }

    /// Like [`exchange`](Self::exchange), but the transport runs under the
    /// caller's message tag instead of an anonymous collective tag, so the
    /// per-tag counters in [`crate::metrics`] attribute the traffic to it.
    pub fn exchange_tagged<T: Encode + Decode>(
        &self,
        world: &mut World,
        outgoing: Vec<(u64, T)>,
        tag: u64,
    ) -> HashMap<u64, Vec<T>> {
        self.exchange_inner(world, outgoing, Some(tag))
    }

    fn exchange_inner<T: Encode + Decode>(
        &self,
        world: &mut World,
        outgoing: Vec<(u64, T)>,
        tag: Option<u64>,
    ) -> HashMap<u64, Vec<T>> {
        // Group by destination rank, preserving per-destination order.
        let mut per_rank: Vec<Vec<(u64, T)>> = (0..world.nranks()).map(|_| Vec::new()).collect();
        for (gid, item) in outgoing {
            let rank = self.asn.rank_of_block(gid);
            per_rank[rank].push((gid, item));
        }
        let buffers: Vec<Vec<u8>> = per_rank
            .into_iter()
            .map(|items| {
                let mut buf = Vec::new();
                (items.len() as u64).encode(&mut buf);
                for (gid, item) in items {
                    gid.encode(&mut buf);
                    item.encode(&mut buf);
                }
                buf
            })
            .collect();
        {
            let metrics = world.metrics();
            for buf in &buffers {
                metrics.observe("exchange.payload_bytes", buf.len() as f64);
            }
        }

        let incoming = match tag {
            Some(t) => world.all_to_all_tagged(buffers, t),
            None => world.all_to_all(buffers),
        };
        let mut result: HashMap<u64, Vec<T>> = HashMap::new();
        for buf in incoming {
            // incoming is indexed by source rank: iteration order is
            // deterministic
            let mut r = crate::codec::Reader::new(&buf);
            let n = u64::decode(&mut r).expect("exchange header");
            for _ in 0..n {
                let gid = u64::decode(&mut r).expect("exchange gid");
                let item = T::decode(&mut r).expect("exchange item");
                debug_assert_eq!(self.asn.rank_of_block(gid), world.rank());
                result.entry(gid).or_default().push(item);
            }
        }
        result
    }
}

/// Multi-round incremental exchange: remembers every (destination block,
/// item id, periodic image) shipped so far, so follow-up rounds send only
/// the *delta shell* — items a destination has not already received. This
/// is the transport half of adaptive ghost sizing: each round grows some
/// blocks' halo radius and ships just the newly covered particles.
pub struct DeltaExchange<'a> {
    pub ex: NeighborExchange<'a>,
    sent: HashSet<(u64, u64, [i8; 3])>,
}

impl<'a> DeltaExchange<'a> {
    pub fn new(dec: &'a Decomposition, asn: &'a Assignment) -> Self {
        DeltaExchange {
            ex: NeighborExchange::new(dec, asn),
            sent: HashSet::new(),
        }
    }

    /// Queue `(dest gid, item id, periodic image, item)` entries, drop the
    /// ones already shipped in earlier rounds, and exchange the rest under
    /// `tag`. Collective: every rank must call it once per round.
    pub fn exchange_new<T: Encode + Decode>(
        &mut self,
        world: &mut World,
        outgoing: Vec<(u64, u64, [i8; 3], T)>,
        tag: u64,
    ) -> HashMap<u64, Vec<T>> {
        let fresh: Vec<(u64, T)> = outgoing
            .into_iter()
            .filter_map(|(gid, id, image, item)| {
                self.sent.insert((gid, id, image)).then_some((gid, item))
            })
            .collect();
        self.ex.exchange_tagged(world, fresh, tag)
    }

    /// Total distinct shipments recorded so far on this rank.
    pub fn sent_count(&self) -> usize {
        self.sent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Runtime;
    use geometry::Aabb;

    #[test]
    fn destinations_respect_ghost_distance() {
        let dec = Decomposition::with_dims(Aabb::cube(4.0), [4, 1, 1], [false; 3]);
        let asn = Assignment::new(4, 1);
        let ex = NeighborExchange::new(&dec, &asn);
        // Block 1 spans x in [1,2). A point at x=1.9 is 0.1 from block 2 and
        // 0.9 from block 0.
        let p = Vec3::new(1.9, 0.5, 0.5);
        let near = ex.destinations_near(1, p, 0.2);
        assert_eq!(near.len(), 1);
        assert_eq!(near[0].gid, 2);
        let far = ex.destinations_near(1, p, 1.0);
        let gids: Vec<u64> = far.iter().map(|n| n.gid).collect();
        assert!(gids.contains(&0) && gids.contains(&2));
    }

    #[test]
    fn periodic_destination_uses_transformed_frame() {
        // Figure 6's particle A: at the domain boundary, sent to the virtual
        // neighbor on the other side with transformed coordinates.
        let dec = Decomposition::with_dims(Aabb::cube(4.0), [4, 1, 1], [true, false, false]);
        let asn = Assignment::new(4, 1);
        let ex = NeighborExchange::new(&dec, &asn);
        let p = Vec3::new(0.1, 0.5, 0.5); // in block 0, near the x=0 seam
        let near = ex.destinations_near(0, p, 0.2);
        assert_eq!(near.len(), 1);
        let n = near[0];
        assert_eq!(n.gid, 3);
        assert!(n.periodic);
        // transformed coordinate lands inside/near block 3's bounds
        let q = p + n.xform;
        assert!((q.x - 4.1).abs() < 1e-12);
        assert!(dec.block_bounds(3).distance(q) <= 0.2);
    }

    #[test]
    fn exchange_routes_items_to_owning_ranks() {
        let dec = Decomposition::with_dims(Aabb::cube(4.0), [2, 2, 1], [false; 3]);
        let asn = Assignment::new(4, 2);
        let results = Runtime::run(2, |w| {
            let ex = NeighborExchange::new(&dec, &asn);
            // every rank sends its rank number to every block
            let outgoing: Vec<(u64, u64)> = (0..4u64).map(|gid| (gid, w.rank() as u64)).collect();
            let got = ex.exchange(w, outgoing);
            // this rank owns 2 blocks; each received one item from each rank
            let mut gids: Vec<u64> = got.keys().copied().collect();
            gids.sort_unstable();
            let expect: Vec<u64> = asn.blocks_of_rank(w.rank()).collect();
            assert_eq!(gids, expect);
            for items in got.values() {
                assert_eq!(items, &vec![0u64, 1]);
            }
            got.len()
        });
        assert_eq!(results, vec![2, 2]);
    }

    #[test]
    fn delta_exchange_ships_each_item_once_per_destination() {
        let dec = Decomposition::with_dims(Aabb::cube(2.0), [2, 1, 1], [false; 3]);
        let asn = Assignment::new(2, 2);
        Runtime::run(2, |w| {
            let mut dx = DeltaExchange::new(&dec, &asn);
            let dest = 1 - w.rank() as u64;
            let none = [0i8; 3];
            // round 0: rank 0 ships items 1 and 2 to block `dest`
            let out0: Vec<(u64, u64, [i8; 3], u32)> = if w.rank() == 0 {
                vec![(dest, 1, none, 100), (dest, 2, none, 200)]
            } else {
                vec![]
            };
            let got0 = dx.exchange_new(w, out0, 7);
            if w.rank() == 1 {
                assert_eq!(got0[&1], vec![100, 200]);
            }
            // round 1: item 2 re-queued (dedup drops it), item 3 is new
            let out1: Vec<(u64, u64, [i8; 3], u32)> = if w.rank() == 0 {
                vec![(dest, 2, none, 200), (dest, 3, none, 300)]
            } else {
                vec![]
            };
            let got1 = dx.exchange_new(w, out1, 7);
            if w.rank() == 1 {
                assert_eq!(got1[&1], vec![300], "only the delta arrives");
            }
            if w.rank() == 0 {
                assert_eq!(dx.sent_count(), 3);
            }
        });
    }

    #[test]
    fn delta_exchange_distinguishes_periodic_images() {
        // the same particle crossing two different periodic seams is two
        // distinct shipments; a repeat of either is deduplicated
        let dec = Decomposition::with_dims(Aabb::cube(2.0), [1, 1, 1], [true; 3]);
        let asn = Assignment::new(1, 1);
        Runtime::run(1, |w| {
            let mut dx = DeltaExchange::new(&dec, &asn);
            let out: Vec<(u64, u64, [i8; 3], u32)> = vec![
                (0, 9, [1, 0, 0], 1),
                (0, 9, [0, 1, 0], 2),
                (0, 9, [1, 0, 0], 3), // duplicate image of the first
            ];
            let got = dx.exchange_new(w, out, 8);
            assert_eq!(got[&0], vec![1, 2]);
        });
    }

    #[test]
    fn destinations_near_by_skips_blocks_without_a_radius() {
        let dec = Decomposition::with_dims(Aabb::cube(4.0), [4, 1, 1], [false; 3]);
        let asn = Assignment::new(4, 1);
        let ex = NeighborExchange::new(&dec, &asn);
        let p = Vec3::new(1.9, 0.5, 0.5); // 0.1 from block 2, 0.9 from block 0
        let only2 = ex.destinations_near_by(1, p, |g| (g == 2).then_some(1.0));
        assert_eq!(only2.iter().map(|n| n.gid).collect::<Vec<_>>(), vec![2]);
        let none = ex.destinations_near_by(1, p, |_| None);
        assert!(none.is_empty());
        // per-destination radii: block 0 asks for a big halo, block 2 tiny
        let asym = ex.destinations_near_by(1, p, |g| Some(if g == 0 { 1.0 } else { 0.01 }));
        assert_eq!(asym.iter().map(|n| n.gid).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn exchange_preserves_order_and_handles_empty() {
        let dec = Decomposition::with_dims(Aabb::cube(2.0), [2, 1, 1], [false; 3]);
        let asn = Assignment::new(2, 2);
        Runtime::run(2, |w| {
            let ex = NeighborExchange::new(&dec, &asn);
            let outgoing: Vec<(u64, u32)> = if w.rank() == 0 {
                vec![(1, 10), (1, 11), (1, 12)]
            } else {
                vec![] // rank 1 sends nothing
            };
            let got = ex.exchange(w, outgoing);
            if w.rank() == 1 {
                assert_eq!(got[&1], vec![10, 11, 12]);
            } else {
                assert!(got.is_empty());
            }
        });
    }
}
