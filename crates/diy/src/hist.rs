//! Streaming log-bucketed histograms: mergeable, codec-serializable, and
//! cheap enough to update on hot paths.
//!
//! A [`LogHistogram`] buckets positive samples by `floor(log2(x))`, so the
//! whole dynamic range of cell compute times (ns) or message sizes (bytes)
//! fits in a few dozen sparse buckets. Counts merge exactly — merging is
//! associative and commutative — which lets per-rank histograms flow up the
//! same reduction tree as [`crate::metrics::RunReport`].

use std::collections::BTreeMap;

use crate::codec::{CodecError, Decode, Encode, Reader};

/// Exponent range kept by the sparse bucket map. `f64` exponents far outside
/// this range are clamped so the map stays small and merges stay exact.
const EXP_MIN: i16 = -64;
const EXP_MAX: i16 = 127;

/// A mergeable histogram over `f64` samples with power-of-two buckets.
///
/// Positive finite samples land in bucket `floor(log2(x))` (clamped to
/// `[-64, 127]`); zeros, negatives, and non-finite samples are tallied
/// separately so they can never poison the moments or the bucket counts.
///
/// ```
/// use diy::hist::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for x in [1.5, 3.0, 3.5, 1024.0] {
///     h.observe(x);
/// }
/// assert_eq!(h.n(), 4);
/// assert_eq!(h.bucket_count(0), 1); // 1.5 in [1, 2)
/// assert_eq!(h.bucket_count(1), 2); // 3.0, 3.5 in [2, 4)
/// assert_eq!(h.bucket_count(10), 1); // 1024 in [1024, 2048)
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    /// Sparse `floor(log2(x))` → count.
    buckets: BTreeMap<i16, u64>,
    /// Samples equal to zero.
    zeros: u64,
    /// Negative samples (bucketed nowhere; magnitude is not meaningful for
    /// the quantities we track).
    negatives: u64,
    /// NaN or ±∞ samples.
    invalid: u64,
    /// Total finite, non-negative samples (zeros + bucketed).
    n: u64,
    /// Sum over finite, non-negative samples.
    sum: f64,
    min: f64,
    max: f64,
}

impl LogHistogram {
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Record one sample.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            self.invalid += 1;
            return;
        }
        if x < 0.0 {
            self.negatives += 1;
            return;
        }
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        self.sum += x;
        if x == 0.0 {
            self.zeros += 1;
            return;
        }
        let e = (x.log2().floor() as i32).clamp(EXP_MIN as i32, EXP_MAX as i32) as i16;
        *self.buckets.entry(e).or_insert(0) += 1;
    }

    /// Record an integer sample (candidate counts, byte sizes).
    pub fn observe_u64(&mut self, x: u64) {
        self.observe(x as f64);
    }

    /// Merge another histogram into this one. Exact on all counts, so the
    /// operation is associative and commutative; `sum` is a float add and
    /// associative only up to rounding.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&e, &c) in &other.buckets {
            *self.buckets.entry(e).or_insert(0) += c;
        }
        self.zeros += other.zeros;
        self.negatives += other.negatives;
        self.invalid += other.invalid;
        if other.n > 0 {
            if self.n == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.n += other.n;
        self.sum += other.sum;
    }

    /// Number of finite, non-negative samples recorded.
    pub fn n(&self) -> u64 {
        self.n
    }

    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    pub fn negatives(&self) -> u64 {
        self.negatives
    }

    /// NaN / ±∞ samples seen (excluded from everything else).
    pub fn invalid(&self) -> u64 {
        self.invalid
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Count in the `floor(log2(x)) == e` bucket.
    pub fn bucket_count(&self, e: i16) -> u64 {
        self.buckets.get(&e).copied().unwrap_or(0)
    }

    /// The sparse `(exponent, count)` rows, ascending by exponent.
    pub fn buckets(&self) -> impl Iterator<Item = (i16, u64)> + '_ {
        self.buckets.iter().map(|(&e, &c)| (e, c))
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): walks the cumulative bucket
    /// counts and returns the representative value `2^(e + 0.5)` of the
    /// bucket containing the target rank (zeros count as `0.0`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        let target = ((q.clamp(0.0, 1.0) * self.n as f64).ceil() as u64).max(1);
        if target <= self.zeros {
            return 0.0;
        }
        let mut seen = self.zeros;
        for (&e, &c) in &self.buckets {
            seen += c;
            if seen >= target {
                return 2f64.powf(e as f64 + 0.5);
            }
        }
        self.max
    }

    /// A unicode sparkline over the occupied bucket range (zeros bucket
    /// included on the left when present). Empty string when no samples.
    pub fn sparkline(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.n == 0 {
            return String::new();
        }
        let lo = self.buckets.keys().next().copied();
        let hi = self.buckets.keys().next_back().copied();
        let mut cells: Vec<u64> = Vec::new();
        if self.zeros > 0 {
            cells.push(self.zeros);
        }
        if let (Some(lo), Some(hi)) = (lo, hi) {
            for e in lo..=hi {
                cells.push(self.bucket_count(e));
            }
        }
        let peak = cells.iter().copied().max().unwrap_or(0).max(1);
        cells
            .iter()
            .map(|&c| {
                if c == 0 {
                    BARS[0]
                } else {
                    // scale 1..=peak onto the 8 glyphs, never rendering a
                    // non-empty cell as the empty glyph height
                    let idx = ((c as f64 / peak as f64) * 7.0).round() as usize;
                    BARS[idx.clamp(1, 7)]
                }
            })
            .collect()
    }

    /// JSON object body (no surrounding braces' key): used by
    /// [`crate::metrics::RunReport::to_json`].
    pub fn json_body(&self) -> String {
        use crate::metrics::json_f64;
        let buckets: Vec<String> = self
            .buckets
            .iter()
            .map(|(&e, &c)| format!("[{e},{c}]"))
            .collect();
        format!(
            "{{\"n\":{},\"zeros\":{},\"negatives\":{},\"invalid\":{},\
             \"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
            self.n,
            self.zeros,
            self.negatives,
            self.invalid,
            json_f64(self.sum),
            json_f64(if self.n == 0 { 0.0 } else { self.min }),
            json_f64(if self.n == 0 { 0.0 } else { self.max }),
            buckets.join(",")
        )
    }
}

impl Encode for LogHistogram {
    fn encode(&self, buf: &mut Vec<u8>) {
        let rows: Vec<(i16, u64)> = self.buckets().collect();
        rows.encode(buf);
        self.zeros.encode(buf);
        self.negatives.encode(buf);
        self.invalid.encode(buf);
        self.n.encode(buf);
        self.sum.encode(buf);
        self.min.encode(buf);
        self.max.encode(buf);
    }
}

impl Decode for LogHistogram {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let rows = Vec::<(i16, u64)>::decode(r)?;
        let mut buckets = BTreeMap::new();
        for (e, c) in rows {
            *buckets.entry(e).or_insert(0) += c;
        }
        Ok(LogHistogram {
            buckets,
            zeros: u64::decode(r)?,
            negatives: u64::decode(r)?,
            invalid: u64::decode(r)?,
            n: u64::decode(r)?,
            sum: f64::decode(r)?,
            min: f64::decode(r)?,
            max: f64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_log2() {
        let mut h = LogHistogram::new();
        for x in [0.75, 1.0, 1.99, 2.0, 4.0, 1000.0] {
            h.observe(x);
        }
        assert_eq!(h.bucket_count(-1), 1); // 0.75
        assert_eq!(h.bucket_count(0), 2); // 1.0, 1.99
        assert_eq!(h.bucket_count(1), 1); // 2.0
        assert_eq!(h.bucket_count(2), 1); // 4.0
        assert_eq!(h.bucket_count(9), 1); // 1000
        assert_eq!(h.n(), 6);
        assert_eq!(h.max(), 1000.0);
    }

    #[test]
    fn special_values_are_segregated() {
        let mut h = LogHistogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(-3.0);
        h.observe(0.0);
        h.observe(8.0);
        assert_eq!(h.invalid(), 3);
        assert_eq!(h.negatives(), 1);
        assert_eq!(h.zeros(), 1);
        assert_eq!(h.n(), 2); // 0.0 and 8.0
        assert_eq!(h.sum(), 8.0);
        assert_eq!(h.min(), 0.0);
        assert!(h.mean().is_finite());
    }

    #[test]
    fn merge_adds_counts_exactly() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for x in [1.0, 2.0, 0.0] {
            a.observe(x);
        }
        for x in [2.5, 4.0, f64::NAN] {
            b.observe(x);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut both = LogHistogram::new();
        for x in [1.0, 2.0, 0.0, 2.5, 4.0, f64::NAN] {
            both.observe(x);
        }
        assert_eq!(ab, both);
    }

    #[test]
    fn merge_into_empty_takes_min_max() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        b.observe(3.0);
        b.observe(12.0);
        a.merge(&b);
        assert_eq!(a.min(), 3.0);
        assert_eq!(a.max(), 12.0);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.observe(1.5); // bucket 0
        }
        for _ in 0..10 {
            h.observe(1000.0); // bucket 9
        }
        assert!(h.quantile(0.5) < 4.0);
        assert!(h.quantile(0.99) > 256.0);
        assert!(LogHistogram::new().quantile(0.5).is_nan());
    }

    #[test]
    fn sparkline_is_nonempty_and_bounded() {
        let mut h = LogHistogram::new();
        for x in [0.0, 1.0, 2.0, 2.0, 4.0, 4.0, 4.0, 4.0] {
            h.observe(x);
        }
        let s = h.sparkline();
        assert!(!s.is_empty());
        assert!(s.chars().count() <= 4); // zeros cell + buckets 0..=2
        assert_eq!(LogHistogram::new().sparkline(), "");
    }

    #[test]
    fn codec_roundtrip_bit_exact() {
        let mut h = LogHistogram::new();
        for x in [0.0, 0.5, 3.0, 3.0, 1e9, -1.0, f64::NAN] {
            h.observe(x);
        }
        let back = LogHistogram::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_bytes(), h.to_bytes());
    }

    #[test]
    fn extreme_exponents_clamp() {
        let mut h = LogHistogram::new();
        h.observe(f64::MIN_POSITIVE); // exponent far below -64 → clamps
        h.observe(1e300); // exponent ~996 → clamps to 127
        assert_eq!(h.bucket_count(EXP_MIN), 1);
        assert_eq!(h.bucket_count(EXP_MAX), 1);
    }
}
