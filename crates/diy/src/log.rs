//! A tiny leveled logger: rank-prefixed lines on stderr.
//!
//! The level is process-wide, read once from `TESS_LOG`
//! (`error` | `info` | `debug`, default `info`) and overridable at runtime
//! with [`set_level`]. Rank threads register themselves via
//! [`set_thread_rank`] (done by `Runtime::run`), so messages printed from
//! inside a simulated rank carry a `r<N>` prefix.
//!
//! Use the [`log_error!`](crate::log_error), [`log_info!`](crate::log_info)
//! and [`log_debug!`](crate::log_debug) macros; they skip formatting
//! entirely when the level is disabled.

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the log level (`error|info|debug`).
pub const LOG_ENV: &str = "TESS_LOG";

/// Severity, ordered: `Error < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Info = 1,
    Debug = 2,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "error" => Ok(Level::Error),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!("bad log level {other:?} (error|info|debug)")),
        }
    }
}

const UNRESOLVED: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNRESOLVED);

fn decode(v: u8) -> Level {
    match v {
        0 => Level::Error,
        2 => Level::Debug,
        _ => Level::Info,
    }
}

/// The active log level (resolving `TESS_LOG` lazily on first call).
pub fn level() -> Level {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNRESOLVED {
        return decode(v);
    }
    let l = std::env::var(LOG_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(Level::Info);
    let _ = LEVEL.compare_exchange(UNRESOLVED, l as u8, Ordering::Relaxed, Ordering::Relaxed);
    decode(LEVEL.load(Ordering::Relaxed))
}

/// Override the level for the whole process; returns the previous level.
pub fn set_level(l: Level) -> Level {
    let prev = LEVEL.swap(l as u8, Ordering::Relaxed);
    if prev == UNRESOLVED {
        Level::Info
    } else {
        decode(prev)
    }
}

/// Would a message at `l` be printed?
#[inline]
pub fn enabled(l: Level) -> bool {
    l <= level()
}

thread_local! {
    static THREAD_RANK: Cell<i64> = const { Cell::new(-1) };
}

/// Tag this thread's log lines with a rank prefix (`None` clears it).
pub fn set_thread_rank(rank: Option<usize>) {
    THREAD_RANK.with(|r| r.set(rank.map(|v| v as i64).unwrap_or(-1)));
}

/// Print one formatted line to stderr (used by the macros; call those).
pub fn write(l: Level, args: std::fmt::Arguments<'_>) {
    let rank = THREAD_RANK.with(Cell::get);
    if rank >= 0 {
        eprintln!("[{} r{rank}] {args}", l.tag());
    } else {
        eprintln!("[{}] {args}", l.tag());
    }
}

#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::write($crate::log::Level::Error, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::write($crate::log::Level::Info, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::write($crate::log::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!("debug".parse::<Level>().unwrap(), Level::Debug);
        assert!("verbose".parse::<Level>().is_err());
    }

    #[test]
    fn set_level_gates_enabled() {
        let prev = set_level(Level::Error);
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(prev);
    }

    #[test]
    fn rank_prefix_round_trips() {
        set_thread_rank(Some(3));
        THREAD_RANK.with(|r| assert_eq!(r.get(), 3));
        set_thread_rank(None);
        THREAD_RANK.with(|r| assert_eq!(r.get(), -1));
    }
}
