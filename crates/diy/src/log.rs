//! A tiny leveled logger: rank-prefixed, monotonically timestamped lines
//! on stderr.
//!
//! The level is process-wide, read once from `TESS_LOG`
//! (`error` | `info` | `debug`, default `info`) and overridable at runtime
//! with [`set_level`]. Rank threads register themselves via
//! [`set_thread_rank`] (done by `Runtime::run`), so messages printed from
//! inside a simulated rank carry a `r<N>` prefix.
//!
//! Every line carries a monotonic timestamp ([`crate::trace::monotonic_ns`],
//! anchored to the first log call so runs start near zero). The output
//! format is process-wide, read once from `TESS_LOG_FORMAT`
//! (`text` | `json`, default `text`) and overridable with [`set_format`]:
//! `json` emits one structured object per line
//! (`{"ts_s":…,"level":…,"rank":…,"msg":…}`, escaped via
//! [`crate::telemetry::json_escape`]) for machine ingestion.
//!
//! Use the [`log_error!`](crate::log_error), [`log_info!`](crate::log_info)
//! and [`log_debug!`](crate::log_debug) macros; they skip formatting
//! entirely when the level is disabled.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Environment variable selecting the log level (`error|info|debug`).
pub const LOG_ENV: &str = "TESS_LOG";

/// Environment variable selecting the output format (`text|json`).
pub const LOG_FORMAT_ENV: &str = "TESS_LOG_FORMAT";

/// Severity, ordered: `Error < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Info = 1,
    Debug = 2,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "error" => Ok(Level::Error),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!("bad log level {other:?} (error|info|debug)")),
        }
    }
}

const UNRESOLVED: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNRESOLVED);

fn decode(v: u8) -> Level {
    match v {
        0 => Level::Error,
        2 => Level::Debug,
        _ => Level::Info,
    }
}

/// The active log level (resolving `TESS_LOG` lazily on first call).
pub fn level() -> Level {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNRESOLVED {
        return decode(v);
    }
    let l = std::env::var(LOG_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(Level::Info);
    let _ = LEVEL.compare_exchange(UNRESOLVED, l as u8, Ordering::Relaxed, Ordering::Relaxed);
    decode(LEVEL.load(Ordering::Relaxed))
}

/// Override the level for the whole process; returns the previous level.
pub fn set_level(l: Level) -> Level {
    let prev = LEVEL.swap(l as u8, Ordering::Relaxed);
    if prev == UNRESOLVED {
        Level::Info
    } else {
        decode(prev)
    }
}

/// Would a message at `l` be printed?
#[inline]
pub fn enabled(l: Level) -> bool {
    l <= level()
}

/// Output format: human text lines or one JSON object per line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Format {
    Text = 0,
    Json = 1,
}

static FORMAT: AtomicU8 = AtomicU8::new(UNRESOLVED);

fn decode_format(v: u8) -> Format {
    if v == 1 {
        Format::Json
    } else {
        Format::Text
    }
}

/// The active output format (resolving `TESS_LOG_FORMAT` lazily).
pub fn format() -> Format {
    let v = FORMAT.load(Ordering::Relaxed);
    if v != UNRESOLVED {
        return decode_format(v);
    }
    let f = match std::env::var(LOG_FORMAT_ENV).ok().as_deref() {
        Some("json") => Format::Json,
        _ => Format::Text,
    };
    let _ = FORMAT.compare_exchange(UNRESOLVED, f as u8, Ordering::Relaxed, Ordering::Relaxed);
    decode_format(FORMAT.load(Ordering::Relaxed))
}

/// Override the output format process-wide; returns the previous format.
pub fn set_format(f: Format) -> Format {
    let prev = FORMAT.swap(f as u8, Ordering::Relaxed);
    if prev == UNRESOLVED {
        Format::Text
    } else {
        decode_format(prev)
    }
}

/// Monotonic anchor: the first log call defines t=0 so timestamps read as
/// seconds into the run.
static T0_NS: AtomicU64 = AtomicU64::new(0);

fn elapsed_s() -> f64 {
    let now = crate::trace::monotonic_ns();
    let mut t0 = T0_NS.load(Ordering::Relaxed);
    if t0 == 0 {
        let _ = T0_NS.compare_exchange(0, now, Ordering::Relaxed, Ordering::Relaxed);
        t0 = T0_NS.load(Ordering::Relaxed);
    }
    now.saturating_sub(t0) as f64 / 1e9
}

thread_local! {
    static THREAD_RANK: Cell<i64> = const { Cell::new(-1) };
}

/// Tag this thread's log lines with a rank prefix (`None` clears it).
pub fn set_thread_rank(rank: Option<usize>) {
    THREAD_RANK.with(|r| r.set(rank.map(|v| v as i64).unwrap_or(-1)));
}

/// Render one log line in `fmt` (no trailing newline). `rank < 0` means
/// "no rank": text omits the `r<N>` tag, JSON emits `"rank":null`.
pub fn format_line(fmt: Format, l: Level, rank: i64, ts_s: f64, msg: &str) -> String {
    match fmt {
        Format::Text => {
            if rank >= 0 {
                format!("[{ts_s:.6} {} r{rank}] {msg}", l.tag())
            } else {
                format!("[{ts_s:.6} {}] {msg}", l.tag())
            }
        }
        Format::Json => {
            let rank_json = if rank >= 0 {
                rank.to_string()
            } else {
                "null".to_string()
            };
            format!(
                "{{\"ts_s\":{ts_s:.6},\"level\":\"{}\",\"rank\":{rank_json},\"msg\":\"{}\"}}",
                l.tag(),
                crate::telemetry::json_escape(msg)
            )
        }
    }
}

/// Print one formatted line to stderr (used by the macros; call those).
pub fn write(l: Level, args: std::fmt::Arguments<'_>) {
    let rank = THREAD_RANK.with(Cell::get);
    let line = format_line(format(), l, rank, elapsed_s(), &args.to_string());
    eprintln!("{line}");
}

#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::write($crate::log::Level::Error, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::write($crate::log::Level::Info, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::write($crate::log::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!("debug".parse::<Level>().unwrap(), Level::Debug);
        assert!("verbose".parse::<Level>().is_err());
    }

    #[test]
    fn set_level_gates_enabled() {
        let prev = set_level(Level::Error);
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(prev);
    }

    #[test]
    fn rank_prefix_round_trips() {
        set_thread_rank(Some(3));
        THREAD_RANK.with(|r| assert_eq!(r.get(), 3));
        set_thread_rank(None);
        THREAD_RANK.with(|r| assert_eq!(r.get(), -1));
    }

    #[test]
    fn set_format_round_trips() {
        let prev = set_format(Format::Json);
        assert_eq!(format(), Format::Json);
        assert_eq!(set_format(Format::Text), Format::Json);
        assert_eq!(format(), Format::Text);
        set_format(prev);
    }

    #[test]
    fn text_line_has_timestamp_and_rank() {
        let line = format_line(Format::Text, Level::Info, 3, 1.25, "hello");
        assert_eq!(line, "[1.250000 info r3] hello");
        let anon = format_line(Format::Text, Level::Error, -1, 0.0, "boom");
        assert_eq!(anon, "[0.000000 error] boom");
    }

    #[test]
    fn json_line_escapes_quotes_and_control_chars() {
        let msg = "say \"hi\"\\path\nnext\tcol\u{1}end";
        let line = format_line(Format::Json, Level::Debug, 2, 0.5, msg);
        assert_eq!(
            line,
            "{\"ts_s\":0.500000,\"level\":\"debug\",\"rank\":2,\
             \"msg\":\"say \\\"hi\\\"\\\\path\\nnext\\tcol\\u0001end\"}"
        );
        // rankless lines carry an explicit null
        let anon = format_line(Format::Json, Level::Info, -1, 2.0, "x");
        assert!(anon.contains("\"rank\":null"));
        // the line is one object with balanced quotes (cheap sanity check:
        // an even number of unescaped quotes)
        let unescaped = line.replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0);
    }

    #[test]
    fn elapsed_is_monotonic() {
        let a = elapsed_s();
        let b = elapsed_s();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
