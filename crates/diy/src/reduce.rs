//! Tree-structured global reductions over serialized values.
//!
//! DIY's "merge" reduction: values are combined pairwise up a binary tree
//! (log₂ *n* rounds), optionally broadcast back down. Used by the
//! postprocessing tools to merge histograms and connected-component label
//! maps across ranks without gathering all raw data at one rank.

use crate::codec::{Decode, Encode};
use crate::comm::World;

/// Tag space reserved for reductions; offset by round so successive
/// reductions do not interfere (callers must not reuse these tags).
const REDUCE_TAG_BASE: u64 = 0x7000_0000_0000;

/// Merge-reduce `value` up a binary tree; returns `Some(result)` at rank 0,
/// `None` elsewhere. `merge` must be associative.
pub fn reduce_merge<T, F>(world: &mut World, value: T, merge: F) -> Option<T>
where
    T: Encode + Decode,
    F: Fn(T, T) -> T,
{
    let rank = world.rank();
    let n = world.nranks();
    let mut acc = value;
    let mut dist = 1usize;
    let mut round = 0u64;
    while dist < n {
        let tag = REDUCE_TAG_BASE + round;
        if rank.is_multiple_of(2 * dist) {
            let partner = rank + dist;
            if partner < n {
                let other: T = world.recv(partner, tag);
                // Keep rank order (lower rank is the left operand) so
                // non-commutative merges are deterministic.
                acc = merge(acc, other);
            }
        } else if rank % (2 * dist) == dist {
            let partner = rank - dist;
            world.send(partner, tag, &acc);
            // This rank's participation ends, but it must keep looping
            // through the barrier-free protocol? No further sends target it
            // in this reduction, so it can exit.
            return None;
        }
        dist *= 2;
        round += 1;
    }
    if rank == 0 {
        Some(acc)
    } else {
        None
    }
}

/// Merge-reduce followed by a broadcast of the result to all ranks.
pub fn all_reduce_merge<T, F>(world: &mut World, value: T, merge: F) -> T
where
    T: Encode + Decode,
    F: Fn(T, T) -> T,
{
    let reduced = reduce_merge(world, value, merge);
    world.broadcast(0, reduced.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Runtime;

    #[test]
    fn sum_over_various_rank_counts() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 16] {
            let results = Runtime::run(n, |w| reduce_merge(w, w.rank() as u64, |a, b| a + b));
            let expect: u64 = (0..n as u64).sum();
            assert_eq!(results[0], Some(expect), "n={n}");
            for r in &results[1..] {
                assert_eq!(*r, None);
            }
        }
    }

    #[test]
    fn all_reduce_broadcasts_everywhere() {
        let results = Runtime::run(6, |w| {
            all_reduce_merge(w, vec![w.rank() as u32], |mut a, b| {
                a.extend(b);
                a
            })
        });
        for r in results {
            // rank order preserved by the tree merge
            assert_eq!(r, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn non_commutative_merge_is_deterministic() {
        let results = Runtime::run(8, |w| {
            all_reduce_merge(w, format!("{}", w.rank()), |a, b| format!("({a}{b})"))
        });
        for r in &results {
            assert_eq!(r, &results[0]);
        }
    }
}
