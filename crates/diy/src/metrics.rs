//! Structured per-rank observability: named phase spans and transport
//! counters, mergeable into a global [`RunReport`].
//!
//! The paper's Table II breaks the in-situ run into phases (simulation,
//! particle exchange, Voronoi computation, output) and attributes time and
//! communication volume to each. This module is the machinery behind that
//! breakdown:
//!
//! * **Phase spans** — RAII guards ([`MetricsHandle::phase`]) backed by the
//!   per-thread CPU clock ([`crate::timing`]). Spans nest; a phase's CPU
//!   time is *inclusive* of its children, so sibling spans tile their
//!   parent.
//! * **Transport counters** — every byte that crosses a rank boundary
//!   through [`crate::comm::World`] (point-to-point sends and receives,
//!   plus every collective built on them) is counted against the innermost
//!   open phase of the rank doing the sending or receiving, and against the
//!   message tag. The local self-delivery inside `all_to_all` is counted on
//!   both sides so global send/receive totals stay conserved.
//! * **Reduction** — [`collect_report`] snapshots each rank and merges the
//!   snapshots up the existing reduction tree into one [`RunReport`]:
//!   per-phase CPU max (the critical path) and sum, message/byte totals,
//!   and per-tag traffic. The report is [`Encode`]/[`Decode`]
//!   round-trippable and serializes to JSON ([`RunReport::to_json`]).
//!
//! ## Invariants the report exposes
//!
//! * **Conservation** — for every tag, global messages and bytes sent equal
//!   messages and bytes received ([`RunReport::is_conserved`]). A violation
//!   means a message was dropped or double-counted — a transport bug.
//! * **Determinism** — at a fixed rank count the counter portion of the
//!   report is identical run to run; [`RunReport::normalized`] zeroes the
//!   (inherently noisy) CPU fields so two reports can be compared exactly.
//!
//! Counters are attributed when a message is *consumed*, not when it is
//! buffered, so a receive that arrives early is still charged to the phase
//! that waited for it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::codec::{CodecError, Decode, Encode, Reader};
use crate::comm::World;
use crate::hist::LogHistogram;
use crate::timing::thread_cpu_time;
use crate::trace::{
    monotonic_ns, trace_mode, Event, EventKind, RankTrace, TraceMode, TraceState, NO_NAME, TID_MAIN,
};

/// Phase name charged with activity that happens outside any open span.
pub const UNPHASED: &str = "(unphased)";

/// Histogram name under which every rank's message sizes are recorded.
pub const HIST_MSG_BYTES: &str = "comm.msg_bytes";

/// How many slowest cells a rank (and the merged report) retains.
pub const TOP_SLOW_CELLS: usize = 8;

/// Counters accumulated by one rank for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// Inclusive thread-CPU seconds spent inside this span.
    pub cpu_s: f64,
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_recv: u64,
    pub bytes_recv: u64,
    /// Collective rounds entered (barriers plus tag-allocating collectives).
    pub collectives: u64,
}

/// Per-tag live telemetry mirror: one counter quartet per message tag,
/// created lazily on first traffic (active only while
/// [`crate::telemetry::enabled`] says so, keeping batch runs free).
struct TagTele {
    sent_msgs: crate::telemetry::Counter,
    sent_bytes: crate::telemetry::Counter,
    recv_msgs: crate::telemetry::Counter,
    recv_bytes: crate::telemetry::Counter,
}

impl TagTele {
    fn new(tag: u64) -> TagTele {
        let hex = format!("0x{tag:x}");
        let labels: [(&str, &str); 1] = [("tag", hex.as_str())];
        TagTele {
            sent_msgs: crate::telemetry::counter("comm.sent_msgs", &labels),
            sent_bytes: crate::telemetry::counter("comm.sent_bytes", &labels),
            recv_msgs: crate::telemetry::counter("comm.recv_msgs", &labels),
            recv_bytes: crate::telemetry::counter("comm.recv_bytes", &labels),
        }
    }
}

#[derive(Default)]
struct Inner {
    /// Rank this handle belongs to (0 until `Runtime::run` wires it).
    rank: u64,
    /// Open spans, innermost last: (name, thread-CPU at entry, external
    /// CPU seconds credited to the span while it was open).
    stack: Vec<(String, f64, f64)>,
    phases: BTreeMap<String, Counters>,
    /// tag → (messages, bytes) on the send side.
    sent_by_tag: BTreeMap<u64, (u64, u64)>,
    /// tag → (messages, bytes) on the receive side.
    recv_by_tag: BTreeMap<u64, (u64, u64)>,
    /// The flight recorder (active only when [`trace_mode`] says so).
    trace: TraceState,
    /// Named distribution histograms ([`MetricsHandle::observe`]).
    hists: BTreeMap<String, LogHistogram>,
    /// Sizes of every message sent by this rank ([`HIST_MSG_BYTES`]).
    msg_bytes: LogHistogram,
    /// Slowest cells seen by this rank, descending, ≤ [`TOP_SLOW_CELLS`].
    slow: Vec<SlowCell>,
    /// Per-tag live telemetry counters (see [`TagTele`]); process-global
    /// cells, so all ranks' traffic sums into one series per tag.
    tele_tags: BTreeMap<u64, TagTele>,
}

impl Inner {
    fn current(&mut self) -> &mut Counters {
        let key = self
            .stack
            .last()
            .map(|(n, _, _)| n.clone())
            .unwrap_or_else(|| UNPHASED.to_string());
        self.phases.entry(key).or_default()
    }
}

/// Cloneable handle to one rank's metrics. Stored inside [`World`];
/// cloning is cheap (`Rc`), so a [`PhaseGuard`] can outlive any borrow of
/// the `World` it came from.
#[derive(Clone, Default)]
pub struct MetricsHandle(Rc<RefCell<Inner>>);

impl MetricsHandle {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a named span; it closes (and records its inclusive thread-CPU
    /// time) when the returned guard drops. Guards must drop in LIFO order
    /// — let scopes do it.
    pub fn phase(&self, name: impl Into<String>) -> PhaseGuard {
        let name = name.into();
        let mut m = self.0.borrow_mut();
        if trace_mode() >= TraceMode::Spans {
            let idx = m.trace.intern(&name);
            m.trace.push(Event {
                t_ns: monotonic_ns(),
                kind: EventKind::SpanBegin,
                tid: TID_MAIN,
                name: idx,
                a: 0,
                b: 0,
            });
        }
        m.stack.push((name, thread_cpu_time(), 0.0));
        drop(m);
        PhaseGuard {
            handle: self.clone(),
        }
    }

    /// Credit CPU seconds spent *outside this thread* (worker-pool threads
    /// computing on the rank's behalf) to the innermost open span. Spans
    /// time themselves with the per-thread CPU clock, so pool work would
    /// otherwise vanish from the phase accounting. The credit propagates to
    /// every enclosing span as the stack unwinds, preserving the inclusive
    /// span semantics the tiling invariant relies on. With no span open,
    /// the time lands on [`UNPHASED`].
    pub fn add_external_cpu(&self, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        let mut m = self.0.borrow_mut();
        match m.stack.last_mut() {
            Some((_, _, external)) => *external += seconds,
            None => m.phases.entry(UNPHASED.to_string()).or_default().cpu_s += seconds,
        }
    }

    pub(crate) fn on_send(&self, tag: u64, len: usize) {
        let mut m = self.0.borrow_mut();
        let c = m.current();
        c.msgs_sent += 1;
        c.bytes_sent += len as u64;
        let e = m.sent_by_tag.entry(tag).or_default();
        e.0 += 1;
        e.1 += len as u64;
        m.msg_bytes.observe_u64(len as u64);
        if crate::telemetry::enabled() {
            let t = m.tele_tags.entry(tag).or_insert_with(|| TagTele::new(tag));
            t.sent_msgs.inc();
            t.sent_bytes.add(len as u64);
        }
        if trace_mode() == TraceMode::Full {
            m.trace.push(Event {
                t_ns: monotonic_ns(),
                kind: EventKind::MsgSend,
                tid: TID_MAIN,
                name: NO_NAME,
                a: tag,
                b: len as u64,
            });
        }
    }

    pub(crate) fn on_recv(&self, tag: u64, len: usize) {
        let mut m = self.0.borrow_mut();
        let c = m.current();
        c.msgs_recv += 1;
        c.bytes_recv += len as u64;
        let e = m.recv_by_tag.entry(tag).or_default();
        e.0 += 1;
        e.1 += len as u64;
        if crate::telemetry::enabled() {
            let t = m.tele_tags.entry(tag).or_insert_with(|| TagTele::new(tag));
            t.recv_msgs.inc();
            t.recv_bytes.add(len as u64);
        }
        if trace_mode() == TraceMode::Full {
            m.trace.push(Event {
                t_ns: monotonic_ns(),
                kind: EventKind::MsgRecv,
                tid: TID_MAIN,
                name: NO_NAME,
                a: tag,
                b: len as u64,
            });
        }
    }

    pub(crate) fn on_collective(&self) {
        self.0.borrow_mut().current().collectives += 1;
    }

    pub(crate) fn set_rank(&self, rank: u64) {
        self.0.borrow_mut().rank = rank;
    }

    /// Record one sample into the named distribution histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut m = self.0.borrow_mut();
        m.hists.entry(name.to_string()).or_default().observe(value);
    }

    /// Merge a whole pre-accumulated histogram into the named one (how the
    /// tessellation driver hands over per-block cell distributions).
    pub fn merge_hist(&self, name: &str, h: &LogHistogram) {
        let mut m = self.0.borrow_mut();
        m.hists.entry(name.to_string()).or_default().merge(h);
    }

    /// Drop an instant marker (e.g. a ghost-round boundary) into the trace.
    /// No-op below `spans` mode.
    pub fn mark(&self, name: &str, value: u64) {
        if trace_mode() < TraceMode::Spans {
            return;
        }
        let mut m = self.0.borrow_mut();
        let idx = m.trace.intern(name);
        m.trace.push(Event {
            t_ns: monotonic_ns(),
            kind: EventKind::Mark,
            tid: TID_MAIN,
            name: idx,
            a: value,
            b: 0,
        });
    }

    /// Record a counter sample into the trace. No-op below `full` mode.
    pub fn counter(&self, name: &str, value: u64) {
        if trace_mode() != TraceMode::Full {
            return;
        }
        let mut m = self.0.borrow_mut();
        let idx = m.trace.intern(name);
        m.trace.push(Event {
            t_ns: monotonic_ns(),
            kind: EventKind::Counter,
            tid: TID_MAIN,
            name: idx,
            a: value,
            b: 0,
        });
    }

    /// Offer `(compute_ns, particle_id)` pairs from block `gid` to the
    /// rank's slowest-cell leaderboard (keeps the top
    /// [`TOP_SLOW_CELLS`]).
    pub fn note_slow_cells(&self, gid: u64, cells: &[(u64, u64)]) {
        if cells.is_empty() {
            return;
        }
        let mut m = self.0.borrow_mut();
        let rank = m.rank;
        m.slow.extend(cells.iter().map(|&(ns, particle)| SlowCell {
            ns,
            gid,
            particle,
            rank,
        }));
        m.slow.sort_by_key(slow_cell_key);
        m.slow.truncate(TOP_SLOW_CELLS);
    }

    /// Record pool chunk tasks `(worker, start_ns, end_ns, chunk)` as trace
    /// events on per-worker tracks (tid `1 + worker`; worker 0 is the
    /// submitting thread).
    pub fn add_pool_tasks(&self, tasks: impl IntoIterator<Item = (u32, u64, u64, u64)>) {
        let mut m = self.0.borrow_mut();
        for (worker, start_ns, end_ns, chunk) in tasks {
            m.trace.push(Event {
                t_ns: start_ns,
                kind: EventKind::PoolTask,
                tid: 1 + worker,
                name: NO_NAME,
                a: end_ns.saturating_sub(start_ns),
                b: chunk,
            });
        }
    }

    /// Detach a copy of the flight-recorder buffer for this rank.
    pub fn trace_snapshot(&self, rank: u64) -> RankTrace {
        self.0.borrow().trace.snapshot(rank)
    }

    /// Copy of this rank's accumulated metrics. Open spans contribute only
    /// activity recorded so far (their CPU time lands when they close).
    pub fn snapshot(&self) -> RankMetrics {
        let m = self.0.borrow();
        let mut hists = m.hists.clone();
        if m.msg_bytes != LogHistogram::default() {
            hists
                .entry(HIST_MSG_BYTES.to_string())
                .or_default()
                .merge(&m.msg_bytes);
        }
        RankMetrics {
            rank: m.rank,
            phases: m.phases.clone(),
            sent_by_tag: m.sent_by_tag.clone(),
            recv_by_tag: m.recv_by_tag.clone(),
            hists,
            slow: m.slow.clone(),
            mem: MemStats::sample(),
        }
    }

    /// Sample the process memory gauges into the flight recorder as
    /// counter tracks (`mem.live_bytes`, `mem.peak_live_bytes`). No-op
    /// below full trace mode, like every counter.
    pub fn sample_mem_counters(&self) {
        if trace_mode() != TraceMode::Full {
            return;
        }
        let a = crate::mem::stats();
        self.counter("mem.live_bytes", a.live_bytes);
        self.counter("mem.peak_live_bytes", a.peak_live_bytes);
    }
}

/// Total order for slowest-cell rankings: larger `ns` first, ties broken by
/// ids so top-k truncation stays associative under merge.
fn slow_cell_key(c: &SlowCell) -> (std::cmp::Reverse<u64>, u64, u64, u64) {
    (std::cmp::Reverse(c.ns), c.gid, c.particle, c.rank)
}

/// Closes its span on drop; see [`MetricsHandle::phase`].
pub struct PhaseGuard {
    handle: MetricsHandle,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let mut m = self.handle.0.borrow_mut();
        let (name, start, external) = m.stack.pop().expect("phase guards drop in LIFO order");
        let dt = thread_cpu_time() - start + external;
        // Spans are inclusive: a parent's time covers its children, so the
        // external credit must bubble up through every enclosing span.
        if let Some((_, _, parent_external)) = m.stack.last_mut() {
            *parent_external += external;
        }
        if trace_mode() >= TraceMode::Spans {
            let idx = m.trace.intern(&name);
            m.trace.push(Event {
                t_ns: monotonic_ns(),
                kind: EventKind::SpanEnd,
                tid: TID_MAIN,
                name: idx,
                a: 0,
                b: 0,
            });
        }
        m.phases.entry(name).or_default().cpu_s += dt;
    }
}

/// One anomalously slow Voronoi cell: where it lives and how long its
/// candidate search took.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlowCell {
    /// Wall-clock nanoseconds spent computing the cell.
    pub ns: u64,
    /// Block gid owning the cell.
    pub gid: u64,
    /// Particle (site) id of the cell.
    pub particle: u64,
    /// Rank that computed it.
    pub rank: u64,
}

impl Encode for SlowCell {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.ns.encode(buf);
        self.gid.encode(buf);
        self.particle.encode(buf);
        self.rank.encode(buf);
    }
}

impl Decode for SlowCell {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SlowCell {
            ns: u64::decode(r)?,
            gid: u64::decode(r)?,
            particle: u64::decode(r)?,
            rank: u64::decode(r)?,
        })
    }
}

/// A named distribution in a merged [`RunReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NamedHist {
    pub name: String,
    pub hist: LogHistogram,
}

impl Encode for NamedHist {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.hist.encode(buf);
    }
}

impl Decode for NamedHist {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(NamedHist {
            name: String::decode(r)?,
            hist: LogHistogram::decode(r)?,
        })
    }
}

/// Process-wide memory accounting sampled into a rank snapshot: the
/// [`crate::mem`] allocator counters plus Linux RSS. Every rank of a
/// threads-as-ranks runtime shares one process, so these are *process*
/// values and merge across ranks with an elementwise max, never a sum.
/// All fields are timing-like (non-deterministic run to run), so
/// [`RunReport::normalized`] zeroes them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Allocations since process start.
    pub alloc_count: u64,
    /// Cumulative bytes allocated since process start.
    pub alloc_bytes_total: u64,
    /// Bytes live at sample time.
    pub live_bytes: u64,
    /// Live-byte high-water mark (resettable; see [`crate::mem::reset_peak`]).
    pub peak_live_bytes: u64,
    /// Resident set size (kB) at sample time; 0 off Linux.
    pub rss_kb: u64,
    /// Process-lifetime resident-set high-water mark (kB); 0 off Linux.
    pub peak_rss_kb: u64,
}

impl MemStats {
    /// Sample the process-wide counters now.
    pub fn sample() -> MemStats {
        let a = crate::mem::stats();
        let (rss_kb, peak_rss_kb) = crate::mem::proc_status_kb();
        MemStats {
            alloc_count: a.alloc_count,
            alloc_bytes_total: a.alloc_bytes_total,
            live_bytes: a.live_bytes,
            peak_live_bytes: a.peak_live_bytes,
            rss_kb,
            peak_rss_kb,
        }
    }

    /// Elementwise max — associative and commutative, and the right
    /// reduction for process-global gauges sampled once per rank.
    pub fn merge(self, o: MemStats) -> MemStats {
        MemStats {
            alloc_count: self.alloc_count.max(o.alloc_count),
            alloc_bytes_total: self.alloc_bytes_total.max(o.alloc_bytes_total),
            live_bytes: self.live_bytes.max(o.live_bytes),
            peak_live_bytes: self.peak_live_bytes.max(o.peak_live_bytes),
            rss_kb: self.rss_kb.max(o.rss_kb),
            peak_rss_kb: self.peak_rss_kb.max(o.peak_rss_kb),
        }
    }
}

impl Encode for MemStats {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.alloc_count.encode(buf);
        self.alloc_bytes_total.encode(buf);
        self.live_bytes.encode(buf);
        self.peak_live_bytes.encode(buf);
        self.rss_kb.encode(buf);
        self.peak_rss_kb.encode(buf);
    }
}

impl Decode for MemStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MemStats {
            alloc_count: u64::decode(r)?,
            alloc_bytes_total: u64::decode(r)?,
            live_bytes: u64::decode(r)?,
            peak_live_bytes: u64::decode(r)?,
            rss_kb: u64::decode(r)?,
            peak_rss_kb: u64::decode(r)?,
        })
    }
}

/// One rank's metrics, detached from the live handle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankMetrics {
    pub rank: u64,
    pub phases: BTreeMap<String, Counters>,
    pub sent_by_tag: BTreeMap<u64, (u64, u64)>,
    pub recv_by_tag: BTreeMap<u64, (u64, u64)>,
    /// Named distributions (includes [`HIST_MSG_BYTES`] when any message
    /// was sent).
    pub hists: BTreeMap<String, LogHistogram>,
    /// Slowest cells, descending, ≤ [`TOP_SLOW_CELLS`].
    pub slow: Vec<SlowCell>,
    /// Process-wide memory accounting at snapshot time.
    pub mem: MemStats,
}

impl RankMetrics {
    /// Sum of all per-phase counters (CPU sums are over inclusive spans,
    /// so nested phases double-count CPU; the transport counters each count
    /// a message exactly once).
    pub fn totals(&self) -> Counters {
        let mut t = Counters::default();
        for c in self.phases.values() {
            t.cpu_s += c.cpu_s;
            t.msgs_sent += c.msgs_sent;
            t.bytes_sent += c.bytes_sent;
            t.msgs_recv += c.msgs_recv;
            t.bytes_recv += c.bytes_recv;
            t.collectives += c.collectives;
        }
        t
    }
}

/// Per-phase entry of a merged [`RunReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseReport {
    pub name: String,
    /// Max over ranks of inclusive thread-CPU seconds — the critical path.
    pub cpu_max_s: f64,
    /// Sum over ranks (total work).
    pub cpu_sum_s: f64,
    /// The rank that contributed `cpu_max_s` — where the imbalance lives.
    pub slowest_rank: u64,
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_recv: u64,
    pub bytes_recv: u64,
    pub collectives: u64,
}

impl PhaseReport {
    /// Load imbalance: critical path over mean rank time (1.0 = perfectly
    /// balanced, `nranks` = one rank did everything).
    pub fn imbalance(&self, nranks: u64) -> f64 {
        if self.cpu_sum_s <= 0.0 || nranks == 0 {
            1.0
        } else {
            self.cpu_max_s / (self.cpu_sum_s / nranks as f64)
        }
    }
}

/// Global traffic for one message tag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagTraffic {
    pub tag: u64,
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_recv: u64,
    pub bytes_recv: u64,
}

/// The merged, run-level view: what Table II's columns are derived from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Ranks merged into this report.
    pub nranks: u64,
    /// Sorted by phase name.
    pub phases: Vec<PhaseReport>,
    /// Sorted by tag.
    pub tags: Vec<TagTraffic>,
    /// Named distributions (candidates/cell, message sizes, …), sorted by
    /// name; merged exactly across ranks.
    pub hists: Vec<NamedHist>,
    /// Global top-[`TOP_SLOW_CELLS`] slowest cells, descending.
    pub slow_cells: Vec<SlowCell>,
    /// Process-wide memory accounting, max-merged across ranks.
    pub memory: MemStats,
}

impl RunReport {
    /// A single-rank report (max = sum = that rank's time).
    pub fn from_rank(m: &RankMetrics) -> RunReport {
        let phases = m
            .phases
            .iter()
            .map(|(name, c)| PhaseReport {
                name: name.clone(),
                cpu_max_s: c.cpu_s,
                cpu_sum_s: c.cpu_s,
                slowest_rank: m.rank,
                msgs_sent: c.msgs_sent,
                bytes_sent: c.bytes_sent,
                msgs_recv: c.msgs_recv,
                bytes_recv: c.bytes_recv,
                collectives: c.collectives,
            })
            .collect();
        let mut tag_set: std::collections::BTreeSet<u64> = m.sent_by_tag.keys().copied().collect();
        tag_set.extend(m.recv_by_tag.keys().copied());
        let tags = tag_set
            .into_iter()
            .map(|tag| {
                let s = m.sent_by_tag.get(&tag).copied().unwrap_or_default();
                let r = m.recv_by_tag.get(&tag).copied().unwrap_or_default();
                TagTraffic {
                    tag,
                    msgs_sent: s.0,
                    bytes_sent: s.1,
                    msgs_recv: r.0,
                    bytes_recv: r.1,
                }
            })
            .collect();
        RunReport {
            nranks: 1,
            phases,
            tags,
            hists: m
                .hists
                .iter()
                .map(|(name, hist)| NamedHist {
                    name: name.clone(),
                    hist: hist.clone(),
                })
                .collect(),
            slow_cells: m.slow.clone(),
            memory: m.mem,
        }
    }

    /// Associative merge (both operands keep their lists sorted).
    pub fn merge(self, o: RunReport) -> RunReport {
        let mut phases: BTreeMap<String, PhaseReport> = self
            .phases
            .into_iter()
            .map(|p| (p.name.clone(), p))
            .collect();
        for p in o.phases {
            match phases.get_mut(&p.name) {
                Some(q) => {
                    // ties keep the left operand's rank, which keeps the
                    // merge associative
                    if p.cpu_max_s > q.cpu_max_s {
                        q.slowest_rank = p.slowest_rank;
                    }
                    q.cpu_max_s = q.cpu_max_s.max(p.cpu_max_s);
                    q.cpu_sum_s += p.cpu_sum_s;
                    q.msgs_sent = q.msgs_sent.saturating_add(p.msgs_sent);
                    q.bytes_sent = q.bytes_sent.saturating_add(p.bytes_sent);
                    q.msgs_recv = q.msgs_recv.saturating_add(p.msgs_recv);
                    q.bytes_recv = q.bytes_recv.saturating_add(p.bytes_recv);
                    q.collectives = q.collectives.saturating_add(p.collectives);
                }
                None => {
                    phases.insert(p.name.clone(), p);
                }
            }
        }
        let mut tags: BTreeMap<u64, TagTraffic> =
            self.tags.into_iter().map(|t| (t.tag, t)).collect();
        for t in o.tags {
            let e = tags.entry(t.tag).or_insert(TagTraffic {
                tag: t.tag,
                ..Default::default()
            });
            e.msgs_sent = e.msgs_sent.saturating_add(t.msgs_sent);
            e.bytes_sent = e.bytes_sent.saturating_add(t.bytes_sent);
            e.msgs_recv = e.msgs_recv.saturating_add(t.msgs_recv);
            e.bytes_recv = e.bytes_recv.saturating_add(t.bytes_recv);
        }
        let mut hists: BTreeMap<String, LogHistogram> =
            self.hists.into_iter().map(|h| (h.name, h.hist)).collect();
        for h in o.hists {
            hists.entry(h.name).or_default().merge(&h.hist);
        }
        let mut slow_cells = self.slow_cells;
        slow_cells.extend(o.slow_cells);
        slow_cells.sort_by_key(slow_cell_key);
        slow_cells.dedup();
        slow_cells.truncate(TOP_SLOW_CELLS);
        RunReport {
            nranks: self.nranks + o.nranks,
            phases: phases.into_values().collect(),
            tags: tags.into_values().collect(),
            hists: hists
                .into_iter()
                .map(|(name, hist)| NamedHist { name, hist })
                .collect(),
            slow_cells,
            memory: self.memory.merge(o.memory),
        }
    }

    /// Look up a named distribution histogram.
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.iter().find(|h| h.name == name).map(|h| &h.hist)
    }

    pub fn phase(&self, name: &str) -> Option<&PhaseReport> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Critical-path seconds of one phase (0 if the phase never ran).
    pub fn cpu_max(&self, name: &str) -> f64 {
        self.phase(name).map_or(0.0, |p| p.cpu_max_s)
    }

    /// Phases whose name starts with `prefix`, in name order — e.g. the
    /// per-round `ghost_round:<n>` spans of the adaptive ghost exchange.
    pub fn phases_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'a PhaseReport> + 'a {
        self.phases
            .iter()
            .filter(move |p| p.name.starts_with(prefix))
    }

    /// Global (messages sent, bytes sent) summed over the tags selected by
    /// `pred` — e.g. a protocol's whole tag namespace. Saturating, like
    /// [`traffic_totals`](Self::traffic_totals).
    pub fn tag_traffic_where(&self, pred: impl Fn(u64) -> bool) -> (u64, u64) {
        self.tags
            .iter()
            .filter(|t| pred(t.tag))
            .fold((0u64, 0u64), |a, t| {
                (
                    a.0.saturating_add(t.msgs_sent),
                    a.1.saturating_add(t.bytes_sent),
                )
            })
    }

    /// Global (messages sent, bytes sent, messages received, bytes
    /// received) over all tags. Saturating: a decoded report with
    /// adversarial counters must not panic the reader.
    pub fn traffic_totals(&self) -> (u64, u64, u64, u64) {
        self.tags.iter().fold((0u64, 0u64, 0u64, 0u64), |a, t| {
            (
                a.0.saturating_add(t.msgs_sent),
                a.1.saturating_add(t.bytes_sent),
                a.2.saturating_add(t.msgs_recv),
                a.3.saturating_add(t.bytes_recv),
            )
        })
    }

    /// Tags whose global send and receive totals disagree.
    pub fn conservation_violations(&self) -> Vec<TagTraffic> {
        self.tags
            .iter()
            .filter(|t| t.msgs_sent != t.msgs_recv || t.bytes_sent != t.bytes_recv)
            .copied()
            .collect()
    }

    /// True when every byte sent was received, tag by tag.
    pub fn is_conserved(&self) -> bool {
        self.conservation_violations().is_empty()
    }

    /// Copy with all CPU fields zeroed: the deterministic part of the
    /// report, equal across identical runs at the same rank count. Timing
    /// distributions (histogram names ending in `_ns`), slowest-rank
    /// attribution, and the slow-cell leaderboard are timing-derived, so
    /// they are stripped too; count-based histograms (message sizes,
    /// candidates per cell) stay.
    pub fn normalized(&self) -> RunReport {
        let mut r = self.clone();
        for p in &mut r.phases {
            p.cpu_max_s = 0.0;
            p.cpu_sum_s = 0.0;
            p.slowest_rank = 0;
        }
        r.hists.retain(|h| !h.name.ends_with("_ns"));
        r.slow_cells.clear();
        // memory gauges are as non-deterministic as CPU time
        r.memory = MemStats::default();
        r
    }

    /// JSON rendering. Tags are emitted as strings because collective tags
    /// use the top bit and would lose precision as JSON doubles.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"nranks\":{},", self.nranks));
        out.push_str("\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cpu_max_s\":{},\"cpu_sum_s\":{},\"imbalance\":{},\
                 \"slowest_rank\":{},\
                 \"msgs_sent\":{},\"bytes_sent\":{},\"msgs_recv\":{},\"bytes_recv\":{},\
                 \"collectives\":{}}}",
                json_string(&p.name),
                json_f64(p.cpu_max_s),
                json_f64(p.cpu_sum_s),
                json_f64(p.imbalance(self.nranks)),
                p.slowest_rank,
                p.msgs_sent,
                p.bytes_sent,
                p.msgs_recv,
                p.bytes_recv,
                p.collectives,
            ));
        }
        out.push_str("],\"hists\":[");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"hist\":{}}}",
                json_string(&h.name),
                h.hist.json_body()
            ));
        }
        out.push_str("],\"slow_cells\":[");
        for (i, c) in self.slow_cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"ns\":{},\"gid\":{},\"particle\":{},\"rank\":{}}}",
                c.ns, c.gid, c.particle, c.rank
            ));
        }
        out.push_str("],\"tags\":[");
        for (i, t) in self.tags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tag\":\"{}\",\"msgs_sent\":{},\"bytes_sent\":{},\
                 \"msgs_recv\":{},\"bytes_recv\":{}}}",
                t.tag, t.msgs_sent, t.bytes_sent, t.msgs_recv, t.bytes_recv,
            ));
        }
        let (ms, bs, mr, br) = self.traffic_totals();
        out.push_str(&format!(
            "],\"totals\":{{\"msgs_sent\":{ms},\"bytes_sent\":{bs},\
             \"msgs_recv\":{mr},\"bytes_recv\":{br}}},"
        ));
        let m = &self.memory;
        out.push_str(&format!(
            "\"memory\":{{\"alloc_count\":{},\"alloc_bytes_total\":{},\
             \"live_bytes\":{},\"peak_live_bytes\":{},\
             \"rss_kb\":{},\"peak_rss_kb\":{}}},",
            m.alloc_count,
            m.alloc_bytes_total,
            m.live_bytes,
            m.peak_live_bytes,
            m.rss_kb,
            m.peak_rss_kb,
        ));
        out.push_str(&format!("\"conserved\":{}}}", self.is_conserved()));
        out
    }
}

/// Escape a string as a JSON token (shared by the report and histogram
/// renderers).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` as a valid JSON token (`null` for non-finite values).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` prints the shortest string that round-trips the value and
        // always includes a decimal point or exponent — valid JSON.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Snapshot every rank's metrics and merge them into one [`RunReport`]
/// (collective). The merge's own messages are recorded *after* the
/// snapshot, so the returned report does not observe itself.
pub fn collect_report(world: &mut World) -> RunReport {
    let local = RunReport::from_rank(&world.metrics().snapshot());
    crate::reduce::all_reduce_merge(world, local, RunReport::merge)
}

impl Encode for PhaseReport {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.cpu_max_s.encode(buf);
        self.cpu_sum_s.encode(buf);
        self.slowest_rank.encode(buf);
        self.msgs_sent.encode(buf);
        self.bytes_sent.encode(buf);
        self.msgs_recv.encode(buf);
        self.bytes_recv.encode(buf);
        self.collectives.encode(buf);
    }
}

impl Decode for PhaseReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PhaseReport {
            name: String::decode(r)?,
            cpu_max_s: f64::decode(r)?,
            cpu_sum_s: f64::decode(r)?,
            slowest_rank: u64::decode(r)?,
            msgs_sent: u64::decode(r)?,
            bytes_sent: u64::decode(r)?,
            msgs_recv: u64::decode(r)?,
            bytes_recv: u64::decode(r)?,
            collectives: u64::decode(r)?,
        })
    }
}

impl Encode for TagTraffic {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.tag.encode(buf);
        self.msgs_sent.encode(buf);
        self.bytes_sent.encode(buf);
        self.msgs_recv.encode(buf);
        self.bytes_recv.encode(buf);
    }
}

impl Decode for TagTraffic {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TagTraffic {
            tag: u64::decode(r)?,
            msgs_sent: u64::decode(r)?,
            bytes_sent: u64::decode(r)?,
            msgs_recv: u64::decode(r)?,
            bytes_recv: u64::decode(r)?,
        })
    }
}

impl Encode for RunReport {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.nranks.encode(buf);
        self.phases.encode(buf);
        self.tags.encode(buf);
        self.hists.encode(buf);
        self.slow_cells.encode(buf);
        self.memory.encode(buf);
    }
}

impl Decode for RunReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RunReport {
            nranks: u64::decode(r)?,
            phases: Vec::<PhaseReport>::decode(r)?,
            tags: Vec::<TagTraffic>::decode(r)?,
            hists: Vec::<NamedHist>::decode(r)?,
            slow_cells: Vec::<SlowCell>::decode(r)?,
            memory: MemStats::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Runtime;

    #[test]
    fn spans_nest_and_record_inclusive_time() {
        let m = MetricsHandle::new();
        {
            let _outer = m.phase("outer");
            let mut x = 1u64;
            {
                let _inner = m.phase("inner");
                for i in 1..200_000u64 {
                    x = x.wrapping_mul(i) ^ (x >> 3);
                }
            }
            for i in 1..200_000u64 {
                x = x.wrapping_mul(i) ^ (x >> 5);
            }
            std::hint::black_box(x);
        }
        let s = m.snapshot();
        let outer = s.phases["outer"].cpu_s;
        let inner = s.phases["inner"].cpu_s;
        assert!(outer > 0.0);
        assert!(inner > 0.0);
        assert!(inner <= outer, "inclusive: inner {inner} <= outer {outer}");
    }

    #[test]
    fn external_cpu_credits_every_enclosing_span() {
        let m = MetricsHandle::new();
        {
            let _outer = m.phase("outer");
            {
                let _inner = m.phase("inner");
                m.add_external_cpu(2.0);
            }
        }
        let s = m.snapshot();
        // Inclusive semantics: the credit shows up in the inner span AND
        // bubbles into the outer one, so tiling (children <= parent) holds.
        assert!(s.phases["inner"].cpu_s >= 2.0);
        assert!(s.phases["outer"].cpu_s >= s.phases["inner"].cpu_s);
    }

    #[test]
    fn external_cpu_without_open_span_lands_unphased() {
        let m = MetricsHandle::new();
        m.add_external_cpu(1.5);
        m.add_external_cpu(-3.0); // ignored: defensive against clock skew
        let s = m.snapshot();
        assert!((s.phases[UNPHASED].cpu_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn counters_attribute_to_innermost_phase() {
        let m = MetricsHandle::new();
        m.on_send(7, 10);
        {
            let _a = m.phase("a");
            m.on_send(7, 20);
            {
                let _b = m.phase("b");
                m.on_recv(7, 30);
            }
        }
        let s = m.snapshot();
        assert_eq!(s.phases[UNPHASED].msgs_sent, 1);
        assert_eq!(s.phases[UNPHASED].bytes_sent, 10);
        assert_eq!(s.phases["a"].bytes_sent, 20);
        assert_eq!(s.phases["b"].msgs_recv, 1);
        assert_eq!(s.phases["b"].bytes_recv, 30);
        assert_eq!(s.sent_by_tag[&7], (2, 30));
        assert_eq!(s.recv_by_tag[&7], (1, 30));
    }

    #[test]
    fn merge_takes_max_and_sum() {
        let mut a = RankMetrics::default();
        a.phases.insert(
            "p".into(),
            Counters {
                cpu_s: 2.0,
                msgs_sent: 3,
                bytes_sent: 30,
                ..Default::default()
            },
        );
        let mut b = RankMetrics::default();
        b.phases.insert(
            "p".into(),
            Counters {
                cpu_s: 5.0,
                msgs_recv: 3,
                bytes_recv: 30,
                ..Default::default()
            },
        );
        let r = RunReport::from_rank(&a).merge(RunReport::from_rank(&b));
        assert_eq!(r.nranks, 2);
        let p = r.phase("p").unwrap();
        assert_eq!(p.cpu_max_s, 5.0);
        assert_eq!(p.cpu_sum_s, 7.0);
        assert_eq!(p.msgs_sent, 3);
        assert_eq!(p.msgs_recv, 3);
        assert!((p.imbalance(2) - 5.0 / 3.5).abs() < 1e-12);
    }

    #[test]
    fn memory_is_sampled_max_merged_and_stripped_by_normalized() {
        let m = MetricsHandle::new();
        let s = m.snapshot();
        // the allocator wrapper is live in every test binary
        assert!(s.mem.alloc_count > 0);
        assert!(s.mem.alloc_bytes_total > 0);
        #[cfg(target_os = "linux")]
        assert!(s.mem.peak_rss_kb >= s.mem.rss_kb);

        let mut a = RankMetrics::default();
        a.mem.peak_live_bytes = 100;
        a.mem.rss_kb = 7;
        let mut b = RankMetrics::default();
        b.mem.peak_live_bytes = 40;
        b.mem.rss_kb = 90;
        let r = RunReport::from_rank(&a).merge(RunReport::from_rank(&b));
        assert_eq!(r.memory.peak_live_bytes, 100);
        assert_eq!(r.memory.rss_kb, 90);
        // survives the codec, renders into JSON, and normalizes away
        let back = RunReport::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back.memory, r.memory);
        assert!(r.to_json().contains("\"memory\":{\"alloc_count\":0"));
        assert_eq!(r.normalized().memory, MemStats::default());
    }

    #[test]
    fn world_counts_point_to_point_conserved() {
        let reports = Runtime::run(2, |w| {
            {
                let _s = w.metrics().phase("talk");
                if w.rank() == 0 {
                    w.send(1, 1, &vec![0u8; 100]);
                } else {
                    let _: Vec<u8> = w.recv(0, 1);
                }
            }
            collect_report(w)
        });
        let r = &reports[0];
        assert_eq!(reports[1].normalized(), r.normalized());
        let talk = r.phase("talk").unwrap();
        assert_eq!(talk.msgs_sent, 1);
        assert_eq!(talk.bytes_sent, 108); // 8-byte length prefix + 100 payload
        assert_eq!(talk.msgs_recv, 1);
        assert_eq!(talk.bytes_recv, 108);
        assert!(
            r.is_conserved(),
            "violations: {:?}",
            r.conservation_violations()
        );
    }

    #[test]
    fn collectives_and_all_to_all_are_conserved() {
        for n in [1usize, 2, 3, 4, 8] {
            let reports = Runtime::run(n, |w| {
                let _s = w.metrics().phase("coll");
                w.barrier();
                let _ = w.all_gather(&(w.rank() as u64));
                let _ = w.all_reduce(1u64, |a, b| a + b);
                let _ = w.exclusive_scan_u64(w.rank() as u64);
                let out: Vec<Vec<u8>> = (0..w.nranks()).map(|t| vec![t as u8; t + 1]).collect();
                let _ = w.all_to_all(out);
                drop(_s);
                collect_report(w)
            });
            let r = &reports[0];
            assert!(r.is_conserved(), "n={n}: {:?}", r.conservation_violations());
            assert!(r.phase("coll").unwrap().collectives > 0);
            for other in &reports[1..] {
                assert_eq!(other.normalized(), r.normalized(), "n={n}");
            }
        }
    }

    #[test]
    fn prefix_and_tag_queries_select_subsets() {
        let mut m = RankMetrics::default();
        for name in ["ghost_round:0", "ghost_round:1", "voronoi"] {
            m.phases.insert(name.into(), Counters::default());
        }
        m.sent_by_tag.insert(10, (2, 100));
        m.sent_by_tag.insert(11, (1, 50));
        m.sent_by_tag.insert(99, (5, 999));
        let r = RunReport::from_rank(&m);
        let rounds: Vec<&str> = r
            .phases_with_prefix("ghost_round:")
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(rounds, vec!["ghost_round:0", "ghost_round:1"]);
        assert_eq!(r.tag_traffic_where(|t| (10..12).contains(&t)), (3, 150));
        assert_eq!(r.tag_traffic_where(|_| false), (0, 0));
    }

    #[test]
    fn report_codec_roundtrip_and_json() {
        let reports = Runtime::run(3, |w| {
            let _s = w.metrics().phase("x");
            let _ = w.all_gather(&(w.rank() as u32));
            drop(_s);
            collect_report(w)
        });
        let r = &reports[0];
        let back = RunReport::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(&back, r);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"nranks\":3"));
        assert!(json.contains("\"conserved\":true"));
        // every quote is balanced; crude but catches broken escaping
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn hists_and_slow_cells_merge_into_reports() {
        let m = MetricsHandle::new();
        m.set_rank(2);
        m.observe("tess.candidates_per_cell", 40.0);
        m.observe("tess.candidates_per_cell", 75.0);
        m.note_slow_cells(9, &[(500, 1), (9000, 2), (100, 3)]);
        m.on_send(1, 64);
        let s = m.snapshot();
        assert_eq!(s.rank, 2);
        assert_eq!(s.hists["tess.candidates_per_cell"].n(), 2);
        assert_eq!(s.hists[HIST_MSG_BYTES].n(), 1);
        assert_eq!(
            s.slow[0],
            SlowCell {
                ns: 9000,
                gid: 9,
                particle: 2,
                rank: 2
            }
        );

        let other = MetricsHandle::new();
        other.set_rank(5);
        other.observe("tess.candidates_per_cell", 33.0);
        other.note_slow_cells(4, &[(70_000, 8)]);
        let r = RunReport::from_rank(&s).merge(RunReport::from_rank(&other.snapshot()));
        assert_eq!(r.hist("tess.candidates_per_cell").unwrap().n(), 3);
        assert_eq!(r.slow_cells[0].ns, 70_000);
        assert_eq!(r.slow_cells[0].rank, 5);
        assert_eq!(r.slow_cells.len(), 4);
        let json = r.to_json();
        assert!(json.contains("\"hists\""));
        assert!(json.contains("\"slow_cells\""));
        assert_eq!(json.matches('"').count() % 2, 0);
        // codec roundtrip with the new fields populated
        let back = RunReport::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back, r);
        // normalized strips timing-derived parts but keeps count hists
        let n = r.normalized();
        assert!(n.slow_cells.is_empty());
        assert!(n.hist("tess.candidates_per_cell").is_some());
        assert!(n.phases.iter().all(|p| p.slowest_rank == 0));
    }

    #[test]
    fn slow_cell_topk_merge_is_associative() {
        let mk = |rank: u64, base: u64| {
            let m = MetricsHandle::new();
            m.set_rank(rank);
            let cells: Vec<(u64, u64)> = (0..12).map(|i| (base + 17 * i, 100 * rank + i)).collect();
            m.note_slow_cells(rank, &cells);
            RunReport::from_rank(&m.snapshot())
        };
        let (a, b, c) = (mk(0, 50), mk(1, 55), mk(2, 60));
        let left = a.clone().merge(b.clone()).merge(c.clone());
        let right = a.merge(b.merge(c));
        assert_eq!(left.slow_cells, right.slow_cells);
        assert_eq!(left.slow_cells.len(), TOP_SLOW_CELLS);
        // descending by ns
        for w in left.slow_cells.windows(2) {
            assert!(w[0].ns >= w[1].ns);
        }
    }

    #[test]
    fn slowest_rank_attributes_the_max() {
        let mut a = RankMetrics {
            rank: 3,
            ..Default::default()
        };
        a.phases.insert(
            "p".into(),
            Counters {
                cpu_s: 9.0,
                ..Default::default()
            },
        );
        let mut b = RankMetrics {
            rank: 7,
            ..Default::default()
        };
        b.phases.insert(
            "p".into(),
            Counters {
                cpu_s: 2.0,
                ..Default::default()
            },
        );
        let r = RunReport::from_rank(&a).merge(RunReport::from_rank(&b));
        assert_eq!(r.phase("p").unwrap().slowest_rank, 3);
        let r = RunReport::from_rank(&b).merge(RunReport::from_rank(&a));
        assert_eq!(r.phase("p").unwrap().slowest_rank, 3);
    }

    #[test]
    fn json_floats_are_valid_tokens() {
        assert_eq!(json_f64(0.0), "0.0");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
