//! Flight-recorder tracing: a bounded per-rank event timeline beneath the
//! aggregate span metrics of [`crate::metrics`].
//!
//! Each rank records timestamped events — span begin/end, message send/recv
//! with tag and byte count, ghost-round markers, per-chunk pool tasks,
//! counter samples — into a bounded buffer ([`TraceState`]). Overflow is
//! lossy but *accounted*: `recorded + dropped == emitted` always holds, and
//! the drop policy keeps the oldest events (a prefix of the timeline) so a
//! span begin is never orphaned by its own end surviving alone.
//!
//! Timestamps are raw `CLOCK_MONOTONIC` nanoseconds ([`monotonic_ns`]);
//! the shared process-wide epoch means per-rank timelines align without any
//! clock-sync step, and the exporter normalizes to the earliest event.
//!
//! The recording mode is a process-wide switch read from `TESS_TRACE`
//! (`off` | `spans` | `full`, default `off`) and overridable at runtime via
//! [`set_trace_mode`]. When off, every instrumentation site reduces to one
//! relaxed atomic load.
//!
//! Export targets:
//! - [`chrome_trace_json`]: Chrome `chrome://tracing` / Perfetto JSON, one
//!   pid per rank, one tid per pool worker;
//! - the binary codec ([`RankTrace`] implements
//!   [`Encode`]/[`Decode`](crate::codec::Decode)) for compact archival;
//! - [`validate_chrome_trace`]: a self-contained well-formedness checker
//!   used by tests and CI (parses, balanced B/E pairs, monotonic
//!   timestamps).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::codec::{CodecError, Decode, Encode, Reader};
use crate::comm::World;
use crate::reduce::reduce_merge;

/// Environment variable selecting the trace mode (`off|spans|full`).
pub const TRACE_ENV: &str = "TESS_TRACE";
/// Environment variable bounding the per-rank event buffer (default 65536).
pub const TRACE_CAP_ENV: &str = "TESS_TRACE_CAP";

const DEFAULT_CAP: usize = 1 << 16;

/// How much the flight recorder captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum TraceMode {
    /// Record nothing (the default); instrumentation costs one atomic load.
    #[default]
    Off = 0,
    /// Record span begin/end and markers only.
    Spans = 1,
    /// Everything: spans, per-message events, counters, pool tasks.
    Full = 2,
}

impl std::str::FromStr for TraceMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(TraceMode::Off),
            "spans" => Ok(TraceMode::Spans),
            "full" => Ok(TraceMode::Full),
            other => Err(format!("bad trace mode {other:?} (off|spans|full)")),
        }
    }
}

impl std::fmt::Display for TraceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceMode::Off => "off",
            TraceMode::Spans => "spans",
            TraceMode::Full => "full",
        })
    }
}

/// Process-wide mode; `UNRESOLVED` until first read, then the env value or
/// whatever [`set_trace_mode`] installed.
static TRACE_MODE: AtomicU8 = AtomicU8::new(UNRESOLVED);
const UNRESOLVED: u8 = u8::MAX;

fn decode_mode(v: u8) -> TraceMode {
    match v {
        1 => TraceMode::Spans,
        2 => TraceMode::Full,
        _ => TraceMode::Off,
    }
}

/// The current trace mode (resolving `TESS_TRACE` lazily on first call).
#[inline]
pub fn trace_mode() -> TraceMode {
    let v = TRACE_MODE.load(Ordering::Relaxed);
    if v != UNRESOLVED {
        return decode_mode(v);
    }
    let m = std::env::var(TRACE_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(TraceMode::Off);
    // another thread may have raced us; either wrote a valid mode
    let _ = TRACE_MODE.compare_exchange(UNRESOLVED, m as u8, Ordering::Relaxed, Ordering::Relaxed);
    decode_mode(TRACE_MODE.load(Ordering::Relaxed))
}

/// Override the trace mode for the whole process; returns the previous mode.
pub fn set_trace_mode(m: TraceMode) -> TraceMode {
    let prev = TRACE_MODE.swap(m as u8, Ordering::Relaxed);
    if prev == UNRESOLVED {
        TraceMode::Off
    } else {
        decode_mode(prev)
    }
}

/// Shared monotonic clock: `CLOCK_MONOTONIC` in nanoseconds. One epoch per
/// process, so events from every rank thread share a timeline.
pub fn monotonic_ns() -> u64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_MONOTONIC, &mut ts) };
    debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_MONOTONIC) failed");
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// Sentinel for "event carries no name".
pub const NO_NAME: u32 = u32::MAX;

/// Thread id of the rank's main thread within its pid track.
pub const TID_MAIN: u32 = 0;

/// What an [`Event`] records. The payload fields `a`/`b` are
/// per-kind: see each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Span opened (`name` = span name).
    SpanBegin = 0,
    /// Span closed (`name` = span name).
    SpanEnd = 1,
    /// Point-to-point send: `a` = tag, `b` = bytes.
    MsgSend = 2,
    /// Point-to-point receive: `a` = tag, `b` = bytes.
    MsgRecv = 3,
    /// Instant marker (`name`, `a` = payload, e.g. ghost round index).
    Mark = 4,
    /// Counter sample (`name`, `a` = value).
    Counter = 5,
    /// Pool chunk task: `t_ns` = start, `a` = duration ns, `b` = chunk
    /// index; `tid` identifies the worker.
    PoolTask = 6,
}

impl TryFrom<u8> for EventKind {
    type Error = CodecError;
    fn try_from(v: u8) -> Result<Self, CodecError> {
        Ok(match v {
            0 => EventKind::SpanBegin,
            1 => EventKind::SpanEnd,
            2 => EventKind::MsgSend,
            3 => EventKind::MsgRecv,
            4 => EventKind::Mark,
            5 => EventKind::Counter,
            6 => EventKind::PoolTask,
            _ => return Err(CodecError::Invalid("bad trace event kind")),
        })
    }
}

/// One flight-recorder event. 29 bytes encoded; names are interned into the
/// owning trace's string table ([`NO_NAME`] when absent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Raw [`monotonic_ns`] timestamp (start time for [`EventKind::PoolTask`]).
    pub t_ns: u64,
    pub kind: EventKind,
    /// Track within the rank: [`TID_MAIN`] for the rank thread, `1 + worker`
    /// for pool tasks (worker 0 being the submitting thread helping out).
    pub tid: u32,
    /// String-table index or [`NO_NAME`].
    pub name: u32,
    pub a: u64,
    pub b: u64,
}

impl Encode for Event {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.t_ns.encode(buf);
        (self.kind as u8).encode(buf);
        self.tid.encode(buf);
        self.name.encode(buf);
        self.a.encode(buf);
        self.b.encode(buf);
    }
}

impl Decode for Event {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Event {
            t_ns: u64::decode(r)?,
            kind: EventKind::try_from(u8::decode(r)?)?,
            tid: u32::decode(r)?,
            name: u32::decode(r)?,
            a: u64::decode(r)?,
            b: u64::decode(r)?,
        })
    }
}

/// Bounded per-rank event recorder with exact overflow accounting.
#[derive(Debug)]
pub struct TraceState {
    cap: usize,
    events: Vec<Event>,
    strings: Vec<String>,
    index: HashMap<String, u32>,
    emitted: u64,
    dropped: u64,
}

impl Default for TraceState {
    fn default() -> Self {
        TraceState::new()
    }
}

impl TraceState {
    /// Buffer capacity from `TESS_TRACE_CAP` (default 65536 events).
    pub fn new() -> Self {
        let cap = std::env::var(TRACE_CAP_ENV)
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAP);
        TraceState::with_cap(cap)
    }

    pub fn with_cap(cap: usize) -> Self {
        TraceState {
            cap,
            events: Vec::new(),
            strings: Vec::new(),
            index: HashMap::new(),
            emitted: 0,
            dropped: 0,
        }
    }

    /// Intern `name`, returning its stable index. The table is unbounded
    /// but name cardinality is tiny (span/phase names).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    /// Record one event. Once the buffer is full, new events are counted
    /// but not stored (prefix-keep policy: the retained events are always
    /// the chronological head of the timeline).
    pub fn push(&mut self, ev: Event) {
        self.emitted += 1;
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    pub fn recorded(&self) -> usize {
        self.events.len()
    }

    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Copy out as a self-contained, serializable per-rank trace.
    pub fn snapshot(&self, rank: u64) -> RankTrace {
        RankTrace {
            rank,
            events: self.events.clone(),
            strings: self.strings.clone(),
            emitted: self.emitted,
            dropped: self.dropped,
        }
    }
}

/// One rank's recorded timeline, detached from the recorder: what travels
/// up the reduction tree and into exports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RankTrace {
    pub rank: u64,
    pub events: Vec<Event>,
    pub strings: Vec<String>,
    /// Total events offered to the recorder (`events.len() + dropped`).
    pub emitted: u64,
    /// Events lost to buffer overflow.
    pub dropped: u64,
}

impl RankTrace {
    pub fn name(&self, idx: u32) -> &str {
        self.strings
            .get(idx as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }
}

impl Encode for RankTrace {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.rank.encode(buf);
        self.events.encode(buf);
        self.strings.encode(buf);
        self.emitted.encode(buf);
        self.dropped.encode(buf);
    }
}

impl Decode for RankTrace {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RankTrace {
            rank: u64::decode(r)?,
            events: Vec::<Event>::decode(r)?,
            strings: Vec::<String>::decode(r)?,
            emitted: u64::decode(r)?,
            dropped: u64::decode(r)?,
        })
    }
}

/// Gather every rank's trace snapshot at the tree root. Returns `Some`
/// (sorted by rank) on rank 0, `None` elsewhere. Collective: all ranks
/// must call it.
pub fn collect_traces(world: &mut World) -> Option<Vec<RankTrace>> {
    let local = world.metrics().trace_snapshot(world.rank() as u64);
    let merged = reduce_merge(world, vec![local], |mut a, mut b| {
        a.append(&mut b);
        a
    });
    merged.map(|mut v| {
        v.sort_by_key(|t| t.rank);
        v
    })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn ts_us(t_ns: u64, t0: u64) -> String {
    format!("{:.3}", t_ns.saturating_sub(t0) as f64 / 1000.0)
}

fn thread_label(tid: u32) -> String {
    match tid {
        TID_MAIN => "main".to_string(),
        1 => "pool submitter".to_string(),
        n => format!("pool worker {}", n - 2),
    }
}

/// Export merged rank traces as Chrome-tracing / Perfetto JSON.
///
/// One pid per rank, tid 0 the rank's main thread, tid `1 + worker` per
/// pool worker. Span begin/end become `B`/`E` duration events, messages and
/// markers become `i` instants, counters become `C` samples, pool tasks
/// become `X` complete events. Timestamps are microseconds relative to the
/// earliest event across all ranks. Spans still open at snapshot time (or
/// whose end was lost to overflow) are closed synthetically at the rank's
/// last timestamp so the stream always balances.
pub fn chrome_trace_json(traces: &[RankTrace]) -> String {
    let t0 = traces
        .iter()
        .flat_map(|t| t.events.iter().map(|e| e.t_ns))
        .min()
        .unwrap_or(0);
    let mut out: Vec<String> = Vec::new();
    for t in traces {
        let pid = t.rank;
        out.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":{}}}}}",
            json_escape(&format!("rank {pid}"))
        ));
        let mut tids: Vec<u32> = t.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for &tid in &tids {
            out.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                json_escape(&thread_label(tid))
            ));
        }
        let t_last = t.events.iter().map(|e| e.t_ns).max().unwrap_or(t0);
        for &tid in &tids {
            let mut evs: Vec<&Event> = t.events.iter().filter(|e| e.tid == tid).collect();
            evs.sort_by_key(|e| e.t_ns); // stable: record order breaks ties
            let mut open: Vec<u32> = Vec::new();
            for e in evs {
                let ts = ts_us(e.t_ns, t0);
                match e.kind {
                    EventKind::SpanBegin => {
                        open.push(e.name);
                        out.push(format!(
                            "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\
                             \"ts\":{ts},\"name\":{}}}",
                            json_escape(t.name(e.name))
                        ));
                    }
                    EventKind::SpanEnd => {
                        // Ends whose begin fell outside the buffer are
                        // dropped rather than emitted unbalanced (cannot
                        // happen under prefix-keep, but stay safe).
                        if open.pop().is_some() {
                            out.push(format!(
                                "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\
                                 \"ts\":{ts},\"name\":{}}}",
                                json_escape(t.name(e.name))
                            ));
                        }
                    }
                    EventKind::MsgSend | EventKind::MsgRecv => {
                        let name = if e.kind == EventKind::MsgSend {
                            "send"
                        } else {
                            "recv"
                        };
                        out.push(format!(
                            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\
                             \"ts\":{ts},\"s\":\"t\",\"name\":\"{name}\",\
                             \"args\":{{\"tag\":{},\"bytes\":{}}}}}",
                            e.a, e.b
                        ));
                    }
                    EventKind::Mark => {
                        out.push(format!(
                            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\
                             \"ts\":{ts},\"s\":\"t\",\"name\":{},\
                             \"args\":{{\"value\":{}}}}}",
                            json_escape(t.name(e.name)),
                            e.a
                        ));
                    }
                    EventKind::Counter => {
                        out.push(format!(
                            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\
                             \"ts\":{ts},\"name\":{},\
                             \"args\":{{\"value\":{}}}}}",
                            json_escape(t.name(e.name)),
                            e.a
                        ));
                    }
                    EventKind::PoolTask => {
                        out.push(format!(
                            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
                             \"ts\":{ts},\"dur\":{:.3},\"name\":\"chunk\",\
                             \"args\":{{\"chunk\":{}}}}}",
                            e.a as f64 / 1000.0,
                            e.b
                        ));
                    }
                }
            }
            // close anything still open at the rank's final timestamp
            while let Some(name) = open.pop() {
                out.push(format!(
                    "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\
                     \"ts\":{},\"name\":{}}}",
                    ts_us(t_last, t0),
                    json_escape(t.name(name))
                ));
            }
        }
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", out.join(",\n"))
}

// ---------------------------------------------------------------------------
// Chrome-trace validation: a tiny self-contained JSON reader, enough to
// check the exports we produce (and reject malformed ones) without pulling
// a JSON dependency into the workspace.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn parse(&mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.s.len() {
            return Err(self.err("trailing data"));
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end")),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.expect(b':')?;
            let v = self.value()?;
            kv.push((k, v));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.s.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.s.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // copy the raw UTF-8 byte run for this char
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    let chunk = self
                        .s
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| self.err("bad utf-8"))?);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .s
            .get(self.pos)
            .is_some_and(|&c| c.is_ascii_digit() || b"+-.eE".contains(&c))
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.s[start..self.pos]).map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Validate an exported Chrome-trace JSON document: it must parse, carry a
/// `traceEvents` array, keep `B`/`E` pairs balanced and well-nested per
/// `(pid, tid)` with matching names, keep timestamps non-decreasing per
/// track, and give every `X` event a non-negative duration. Returns the
/// number of events checked.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc = JsonParser::new(json).parse()?;
    let events = doc.get("traceEvents").ok_or("missing traceEvents")?;
    let Json::Arr(events) = events else {
        return Err("traceEvents is not an array".to_string());
    };
    // (pid, tid) → (open-span name stack, last ts)
    let mut tracks: HashMap<(u64, u64), (Vec<String>, f64)> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let pid = e
            .get("pid")
            .and_then(Json::as_num)
            .ok_or(format!("event {i}: missing pid"))? as u64;
        let tid = e.get("tid").and_then(Json::as_num).unwrap_or(0.0) as u64;
        let ts = e
            .get("ts")
            .and_then(Json::as_num)
            .ok_or(format!("event {i}: missing ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: bad ts {ts}"));
        }
        let track = tracks.entry((pid, tid)).or_insert((Vec::new(), ts));
        if ts < track.1 {
            return Err(format!(
                "event {i}: ts {ts} goes backwards on pid {pid} tid {tid} (last {})",
                track.1
            ));
        }
        track.1 = ts;
        let name = e.get("name").and_then(Json::as_str).unwrap_or("");
        match ph {
            "B" => track.0.push(name.to_string()),
            "E" => {
                let top = track.0.pop().ok_or(format!(
                    "event {i}: E without matching B on pid {pid} tid {tid}"
                ))?;
                if top != name {
                    return Err(format!(
                        "event {i}: E name {name:?} does not match open span {top:?}"
                    ));
                }
            }
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i}: X without dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: bad dur {dur}"));
                }
            }
            "i" | "C" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    for ((pid, tid), (stack, _)) in &tracks {
        if !stack.is_empty() {
            return Err(format!(
                "unbalanced spans on pid {pid} tid {tid}: {stack:?} left open"
            ));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, kind: EventKind, name: u32) -> Event {
        Event {
            t_ns,
            kind,
            tid: TID_MAIN,
            name,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn mode_parses_and_overrides() {
        assert_eq!("off".parse::<TraceMode>().unwrap(), TraceMode::Off);
        assert_eq!("spans".parse::<TraceMode>().unwrap(), TraceMode::Spans);
        assert_eq!("full".parse::<TraceMode>().unwrap(), TraceMode::Full);
        assert!("loud".parse::<TraceMode>().is_err());
        assert!(TraceMode::Spans < TraceMode::Full);
    }

    #[test]
    fn monotonic_clock_is_monotonic() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
        assert!(a > 0);
    }

    #[test]
    fn overflow_accounting_is_exact() {
        let mut st = TraceState::with_cap(4);
        let total = 37u64;
        for i in 0..total {
            st.push(ev(i, EventKind::Mark, NO_NAME));
        }
        assert_eq!(st.recorded(), 4);
        assert_eq!(st.emitted(), total);
        assert_eq!(st.dropped(), total - 4);
        assert_eq!(st.recorded() as u64 + st.dropped(), st.emitted());
        // prefix-keep: the survivors are the oldest events
        let kept: Vec<u64> = st.snapshot(0).events.iter().map(|e| e.t_ns).collect();
        assert_eq!(kept, vec![0, 1, 2, 3]);
    }

    #[test]
    fn intern_is_stable() {
        let mut st = TraceState::with_cap(8);
        let a = st.intern("alpha");
        let b = st.intern("beta");
        assert_eq!(st.intern("alpha"), a);
        assert_ne!(a, b);
        let snap = st.snapshot(3);
        assert_eq!(snap.name(a), "alpha");
        assert_eq!(snap.name(b), "beta");
        assert_eq!(snap.name(NO_NAME), "?");
    }

    #[test]
    fn rank_trace_codec_roundtrip() {
        let mut st = TraceState::with_cap(16);
        let n = st.intern("phase");
        st.push(ev(10, EventKind::SpanBegin, n));
        st.push(Event {
            t_ns: 11,
            kind: EventKind::MsgSend,
            tid: TID_MAIN,
            name: NO_NAME,
            a: 42,
            b: 1000,
        });
        st.push(Event {
            t_ns: 15,
            kind: EventKind::PoolTask,
            tid: 2,
            name: NO_NAME,
            a: 5,
            b: 0,
        });
        st.push(ev(20, EventKind::SpanEnd, n));
        let t = st.snapshot(7);
        let back = RankTrace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_bytes(), t.to_bytes());
        // truncation is a clean error
        let bytes = t.to_bytes();
        for cut in 0..bytes.len() {
            assert!(RankTrace::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn chrome_export_validates_and_balances() {
        let mut st = TraceState::with_cap(64);
        let outer = st.intern("outer");
        let inner = st.intern("inner");
        st.push(ev(100, EventKind::SpanBegin, outer));
        st.push(ev(200, EventKind::SpanBegin, inner));
        st.push(Event {
            t_ns: 250,
            kind: EventKind::MsgRecv,
            tid: TID_MAIN,
            name: NO_NAME,
            a: 9,
            b: 128,
        });
        st.push(ev(300, EventKind::SpanEnd, inner));
        // "outer" left open → exporter must close it synthetically
        let mark = st.intern("ghost_round");
        st.push(Event {
            t_ns: 350,
            kind: EventKind::Mark,
            tid: TID_MAIN,
            name: mark,
            a: 2,
            b: 0,
        });
        st.push(Event {
            t_ns: 120,
            kind: EventKind::PoolTask,
            tid: 3,
            name: NO_NAME,
            a: 77,
            b: 4,
        });
        let json = chrome_trace_json(&[st.snapshot(0)]);
        let n = validate_chrome_trace(&json).expect("export must validate");
        assert!(n >= 7, "expected events + metadata, got {n}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        // unbalanced: B without E
        let bad = "{\"traceEvents\":[\
            {\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1,\"name\":\"x\"}]}";
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("unbalanced"));
        // E name mismatch
        let bad = "{\"traceEvents\":[\
            {\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1,\"name\":\"x\"},\
            {\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":2,\"name\":\"y\"}]}";
        assert!(validate_chrome_trace(bad).is_err());
        // backwards timestamps
        let bad = "{\"traceEvents\":[\
            {\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":5,\"name\":\"x\"},\
            {\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":2,\"name\":\"x\"}]}";
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("backwards"));
    }

    #[test]
    fn validator_accepts_escapes_and_unicode() {
        let ok = "{\"traceEvents\":[\
            {\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":0.5,\"s\":\"t\",\
             \"name\":\"caf\\u00e9 \\\"quoted\\\" ▁▂\",\"args\":{}}]}";
        assert_eq!(validate_chrome_trace(ok).unwrap(), 1);
    }
}
