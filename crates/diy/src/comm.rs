//! Rank runtime: a simulated distributed-memory machine.
//!
//! [`Runtime::run`] spawns one OS thread per rank. Each rank owns its data
//! privately; ranks communicate only by sending serialized messages through
//! unbounded channels (so sends never block and no send/recv deadlock is
//! possible). The API mirrors the MPI subset DIY uses: tagged point-to-point
//! messages, barrier, gather/broadcast, all-gather, all-reduce, and
//! exclusive scan.
//!
//! ## Determinism
//!
//! Message arrival order between different senders is nondeterministic, but
//! every collective and the [`crate::exchange`] layer sort received data by
//! source rank, so algorithm results are reproducible run to run.

use std::sync::{Arc, Barrier};

use crossbeam_channel::{unbounded, Receiver, Sender};

use crate::codec::{Decode, Encode};
use crate::metrics::MetricsHandle;

struct Envelope {
    from: usize,
    tag: u64,
    bytes: Vec<u8>,
}

/// Entry point for SPMD execution.
pub struct Runtime;

impl Runtime {
    /// Run `f` on `nranks` ranks (one OS thread each) and collect each
    /// rank's return value, indexed by rank.
    ///
    /// ```
    /// use diy::comm::Runtime;
    ///
    /// let sums = Runtime::run(4, |world| {
    ///     // every rank contributes its rank id; all receive the total
    ///     world.all_reduce(world.rank() as u64, |a, b| a + b)
    /// });
    /// assert_eq!(sums, vec![6, 6, 6, 6]);
    /// ```
    pub fn run<R, F>(nranks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut World) -> R + Sync,
    {
        assert!(nranks > 0, "need at least one rank");
        let mut txs: Vec<Sender<Envelope>> = Vec::with_capacity(nranks);
        let mut rxs: Vec<Option<Receiver<Envelope>>> = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(Some(rx));
        }
        let barrier = Arc::new(Barrier::new(nranks));

        let mut results: Vec<Option<R>> = (0..nranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nranks);
            for (rank, rx) in rxs.iter_mut().enumerate() {
                let rx = rx.take().expect("receiver taken once");
                let txs = txs.clone();
                let barrier = Arc::clone(&barrier);
                let f = &f;
                handles.push(scope.spawn(move || {
                    crate::log::set_thread_rank(Some(rank));
                    let metrics = MetricsHandle::new();
                    metrics.set_rank(rank as u64);
                    let mut world = World {
                        rank,
                        nranks,
                        txs,
                        rx,
                        pending: Vec::new(),
                        barrier,
                        coll_seq: 0,
                        metrics,
                    };
                    f(&mut world)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(r) => results[rank] = Some(r),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("rank completed"))
            .collect()
    }
}

/// A job shipped to every resident rank thread for collective execution.
type ResidentJob = Box<dyn FnOnce(&mut World) + Send>;

/// A persistent SPMD machine: like [`Runtime::run`], but the rank threads —
/// and therefore their `World`s, channel state, and metrics — stay alive
/// between jobs. A long-lived owner (e.g. a resident analysis service) can
/// submit many collective jobs without paying thread spawn/teardown or
/// losing per-rank state accumulated by earlier jobs.
///
/// Every job runs on *all* ranks (SPMD); [`ResidentRuntime::run`] blocks
/// until each rank returns and yields the results indexed by rank, exactly
/// like `Runtime::run`. Jobs submitted from different threads are serialized
/// per rank in submission order (the per-rank job queue is FIFO), but
/// callers that need a consistent cross-rank order must serialize
/// submissions themselves (e.g. behind a mutex).
///
/// Jobs must not panic: a panicking job kills its rank thread and poisons
/// the machine (subsequent collective jobs would deadlock waiting for the
/// dead rank).
pub struct ResidentRuntime {
    nranks: usize,
    /// Guarded so concurrent `run` callers submit their job to *all* ranks
    /// atomically: per-rank queues are FIFO, so holding the lock across
    /// the broadcast keeps every rank executing jobs in the same order
    /// (interleaved submissions would scramble collectives).
    job_txs: std::sync::Mutex<Vec<Sender<ResidentJob>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ResidentRuntime {
    /// Spawn `nranks` resident rank threads, each owning its `World`.
    pub fn spawn(nranks: usize) -> Self {
        assert!(nranks > 0, "need at least one rank");
        let mut txs: Vec<Sender<Envelope>> = Vec::with_capacity(nranks);
        let mut rxs: Vec<Option<Receiver<Envelope>>> = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(Some(rx));
        }
        let barrier = Arc::new(Barrier::new(nranks));
        let mut job_txs = Vec::with_capacity(nranks);
        let mut handles = Vec::with_capacity(nranks);
        for (rank, rx) in rxs.iter_mut().enumerate() {
            let rx = rx.take().expect("receiver taken once");
            let (job_tx, job_rx) = unbounded::<ResidentJob>();
            job_txs.push(job_tx);
            let txs = txs.clone();
            let barrier = Arc::clone(&barrier);
            let handle = std::thread::Builder::new()
                .name(format!("resident-rank-{rank}"))
                .spawn(move || {
                    crate::log::set_thread_rank(Some(rank));
                    let metrics = MetricsHandle::new();
                    metrics.set_rank(rank as u64);
                    let mut world = World {
                        rank,
                        nranks,
                        txs,
                        rx,
                        pending: Vec::new(),
                        barrier,
                        coll_seq: 0,
                        metrics,
                    };
                    while let Ok(job) = job_rx.recv() {
                        job(&mut world);
                    }
                })
                .expect("spawn resident rank thread");
            handles.push(handle);
        }
        ResidentRuntime {
            nranks,
            job_txs: std::sync::Mutex::new(job_txs),
            handles,
        }
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Run `f` collectively on every resident rank and collect the results
    /// indexed by rank. Blocks until all ranks have returned.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&mut World) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let (res_tx, res_rx) = unbounded::<(usize, R)>();
        {
            let job_txs = self.job_txs.lock().expect("job submission lock");
            for job_tx in job_txs.iter() {
                let f = Arc::clone(&f);
                let res_tx = res_tx.clone();
                let job: ResidentJob = Box::new(move |world| {
                    let r = f(world);
                    let _ = res_tx.send((world.rank(), r));
                });
                job_tx.send(job).expect("resident rank thread alive");
            }
        }
        drop(res_tx);
        let mut out: Vec<Option<R>> = (0..self.nranks).map(|_| None).collect();
        for _ in 0..self.nranks {
            let (rank, r) = res_rx.recv().expect("resident rank returned a result");
            out[rank] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("exactly one result per rank"))
            .collect()
    }
}

impl Drop for ResidentRuntime {
    fn drop(&mut self) {
        // Closing the job channels ends each rank's job loop.
        self.job_txs.lock().expect("job submission lock").clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One rank's view of the machine: its identity plus communication handles.
pub struct World {
    rank: usize,
    nranks: usize,
    txs: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    /// Messages received while waiting for a different (from, tag).
    pending: Vec<Envelope>,
    barrier: Arc<Barrier>,
    /// Collective sequence number; identical across ranks because all ranks
    /// execute collectives in the same (SPMD) order.
    coll_seq: u64,
    /// Per-rank observability (phase spans + transport counters).
    metrics: MetricsHandle,
}

/// Tag bit reserved for internal collective traffic.
const COLLECTIVE_BIT: u64 = 1 << 63;

impl World {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// This rank's metrics handle. The returned clone shares state with the
    /// `World`, so a span can stay open across `&mut self` collective calls:
    ///
    /// ```
    /// use diy::comm::Runtime;
    ///
    /// Runtime::run(2, |world| {
    ///     let _span = world.metrics().phase("reduce");
    ///     world.all_reduce(1u64, |a, b| a + b)
    /// });
    /// ```
    pub fn metrics(&self) -> MetricsHandle {
        self.metrics.clone()
    }

    /// Send raw bytes to `to` with a user `tag` (must not set the top bit).
    pub fn send_bytes(&self, to: usize, tag: u64, bytes: Vec<u8>) {
        debug_assert!(tag & COLLECTIVE_BIT == 0, "top tag bit is reserved");
        self.send_raw(to, tag, bytes);
    }

    fn send_raw(&self, to: usize, tag: u64, bytes: Vec<u8>) {
        self.metrics.on_send(tag, bytes.len());
        self.txs[to]
            .send(Envelope {
                from: self.rank,
                tag,
                bytes,
            })
            .expect("receiver alive for the duration of the run");
    }

    /// Blocking receive of the next message from `from` with tag `tag`.
    /// Out-of-order messages are buffered, so interleavings cannot drop
    /// data. Metrics count the message when it is consumed here, so it is
    /// charged to the phase that waited for it.
    pub fn recv_bytes(&mut self, from: usize, tag: u64) -> Vec<u8> {
        if let Some(i) = self
            .pending
            .iter()
            .position(|e| e.from == from && e.tag == tag)
        {
            let bytes = self.pending.remove(i).bytes;
            self.metrics.on_recv(tag, bytes.len());
            return bytes;
        }
        loop {
            let env = self
                .rx
                .recv()
                .expect("senders alive for the duration of the run");
            if env.from == from && env.tag == tag {
                self.metrics.on_recv(tag, env.bytes.len());
                return env.bytes;
            }
            self.pending.push(env);
        }
    }

    /// Typed send.
    pub fn send<T: Encode>(&self, to: usize, tag: u64, value: &T) {
        self.send_bytes(to, tag, value.to_bytes());
    }

    /// Typed receive (panics on decode failure — a protocol bug, not an
    /// input error).
    pub fn recv<T: Decode>(&mut self, from: usize, tag: u64) -> T {
        let bytes = self.recv_bytes(from, tag);
        T::from_bytes(&bytes).expect("peer encoded the agreed type")
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.metrics.on_collective();
        self.barrier.wait();
    }

    fn next_coll_tag(&mut self) -> u64 {
        self.metrics.on_collective();
        let tag = COLLECTIVE_BIT | self.coll_seq;
        self.coll_seq += 1;
        tag
    }

    /// Gather one value per rank at `root`; returns `Some(values)` (indexed
    /// by rank) only at the root.
    pub fn gather<T: Encode + Decode>(&mut self, root: usize, value: &T) -> Option<Vec<T>> {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.nranks).map(|_| None).collect();
            out[root] = Some(T::from_bytes(&value.to_bytes()).expect("self roundtrip"));
            for (from, slot) in out.iter_mut().enumerate() {
                if from != root {
                    *slot = Some(self.recv(from, tag));
                }
            }
            Some(out.into_iter().map(|v| v.expect("gathered")).collect())
        } else {
            self.send_raw(root, tag, value.to_bytes());
            None
        }
    }

    /// Broadcast `value` (significant at `root`) to all ranks.
    pub fn broadcast<T: Encode + Decode>(&mut self, root: usize, value: Option<&T>) -> T {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let v = value.expect("root provides the value");
            let bytes = v.to_bytes();
            for to in 0..self.nranks {
                if to != root {
                    self.send_raw(to, tag, bytes.clone());
                }
            }
            T::from_bytes(&bytes).expect("self roundtrip")
        } else {
            self.recv(root, tag)
        }
    }

    /// Gather one value per rank on every rank.
    pub fn all_gather<T: Encode + Decode>(&mut self, value: &T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.broadcast(0, gathered.as_ref())
    }

    /// Reduce with a binary operator, result on every rank. The fold is
    /// performed in rank order, so non-commutative reductions are
    /// deterministic.
    pub fn all_reduce<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Encode + Decode,
        F: Fn(T, T) -> T,
    {
        let mut all = self.all_gather(&value);
        let first = all.remove(0);
        all.into_iter().fold(first, op)
    }

    /// Exclusive prefix sum of `value` over ranks (rank 0 receives 0);
    /// also returns the global total. Used to compute file offsets for
    /// collective writes.
    pub fn exclusive_scan_u64(&mut self, value: u64) -> (u64, u64) {
        let all = self.all_gather(&value);
        let prefix: u64 = all[..self.rank].iter().sum();
        let total: u64 = all.iter().sum();
        (prefix, total)
    }

    /// Personalized all-to-all: send `outgoing[r]` to rank `r`, receive one
    /// buffer from every rank (indexed by source). Empty buffers are
    /// exchanged too, which doubles as a synchronization point.
    pub fn all_to_all(&mut self, outgoing: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let tag = self.next_coll_tag();
        self.all_to_all_with(outgoing, tag)
    }

    /// Personalized all-to-all under a caller-chosen user tag (top bit must
    /// be clear), so the traffic is attributed to a stable, rank-count-
    /// independent tag in the per-tag counters (e.g. one tag per ghost
    /// exchange round). Collective: every rank must call it in the same
    /// order with the same tag. Reusing a tag across calls is safe because
    /// delivery is FIFO per sender.
    pub fn all_to_all_tagged(&mut self, outgoing: Vec<Vec<u8>>, tag: u64) -> Vec<Vec<u8>> {
        debug_assert!(tag & COLLECTIVE_BIT == 0, "top tag bit is reserved");
        self.metrics.on_collective();
        self.all_to_all_with(outgoing, tag)
    }

    fn all_to_all_with(&mut self, outgoing: Vec<Vec<u8>>, tag: u64) -> Vec<Vec<u8>> {
        assert_eq!(outgoing.len(), self.nranks);
        for (to, bytes) in outgoing.into_iter().enumerate() {
            if to == self.rank {
                // Deliver locally below. Count the send here (the matching
                // receive is counted when `recv_bytes` consumes it) so the
                // global sent == received invariant holds.
                self.metrics.on_send(tag, bytes.len());
                self.pending.push(Envelope {
                    from: self.rank,
                    tag,
                    bytes,
                });
            } else {
                self.send_raw(to, tag, bytes);
            }
        }
        (0..self.nranks)
            .map(|from| self.recv_bytes(from, tag))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let r = Runtime::run(1, |w| {
            assert_eq!(w.rank(), 0);
            assert_eq!(w.nranks(), 1);
            w.barrier();
            w.rank() * 10
        });
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn results_indexed_by_rank() {
        let r = Runtime::run(8, |w| w.rank() * w.rank());
        assert_eq!(r, (0..8).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn resident_runtime_runs_collective_jobs() {
        let rt = ResidentRuntime::spawn(4);
        let sums = rt.run(|w| w.all_reduce(w.rank() as u64, |a, b| a + b));
        assert_eq!(sums, vec![6, 6, 6, 6]);
        let ranks = rt.run(|w| w.rank() * 10);
        assert_eq!(ranks, vec![0, 10, 20, 30]);
    }

    #[test]
    fn resident_runtime_worlds_persist_across_jobs() {
        // A message sent in job 1 is received in job 2: the rank threads and
        // their channel state stay alive between jobs.
        let rt = ResidentRuntime::spawn(3);
        rt.run(|w| {
            let next = (w.rank() + 1) % w.nranks();
            w.send(next, 9, &(w.rank() as u64));
        });
        let got = rt.run(|w| {
            let prev = (w.rank() + w.nranks() - 1) % w.nranks();
            w.recv::<u64>(prev, 9)
        });
        assert_eq!(got, vec![2, 0, 1]);
    }

    #[test]
    fn resident_runtime_single_rank() {
        let rt = ResidentRuntime::spawn(1);
        let r = rt.run(|w| {
            w.barrier();
            w.nranks()
        });
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn point_to_point_ring() {
        let r = Runtime::run(4, |w| {
            let next = (w.rank() + 1) % w.nranks();
            let prev = (w.rank() + w.nranks() - 1) % w.nranks();
            w.send(next, 7, &(w.rank() as u64));
            w.recv::<u64>(prev, 7)
        });
        assert_eq!(r, vec![3, 0, 1, 2]);
    }

    #[test]
    fn tagged_messages_do_not_cross() {
        let r = Runtime::run(2, |w| {
            if w.rank() == 0 {
                // send tag 2 first, then tag 1: receiver asks for 1 first
                w.send(1, 2, &22u32);
                w.send(1, 1, &11u32);
                0
            } else {
                let a: u32 = w.recv(0, 1);
                let b: u32 = w.recv(0, 2);
                assert_eq!((a, b), (11, 22));
                1
            }
        });
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn gather_and_broadcast() {
        Runtime::run(5, |w| {
            let g = w.gather(2, &(w.rank() as u64 + 100));
            if w.rank() == 2 {
                assert_eq!(g.unwrap(), vec![100, 101, 102, 103, 104]);
            } else {
                assert!(g.is_none());
            }
            let b = w.broadcast(3, if w.rank() == 3 { Some(&999u64) } else { None });
            assert_eq!(b, 999);
        });
    }

    #[test]
    fn all_gather_and_all_reduce() {
        Runtime::run(6, |w| {
            let all = w.all_gather(&(w.rank() as u32));
            assert_eq!(all, (0..6u32).collect::<Vec<_>>());
            let sum = w.all_reduce(w.rank() as u64, |a, b| a + b);
            assert_eq!(sum, 15);
            let max = w.all_reduce(w.rank() as u64, |a, b| a.max(b));
            assert_eq!(max, 5);
        });
    }

    #[test]
    fn exclusive_scan() {
        Runtime::run(4, |w| {
            let v = (w.rank() as u64 + 1) * 10; // 10,20,30,40
            let (prefix, total) = w.exclusive_scan_u64(v);
            let expect = [0u64, 10, 30, 60][w.rank()];
            assert_eq!(prefix, expect);
            assert_eq!(total, 100);
        });
    }

    #[test]
    fn all_to_all_delivers_per_source() {
        Runtime::run(3, |w| {
            let outgoing: Vec<Vec<u8>> =
                (0..3).map(|to| vec![(w.rank() * 10 + to) as u8]).collect();
            let incoming = w.all_to_all(outgoing);
            for (from, buf) in incoming.iter().enumerate() {
                assert_eq!(buf, &vec![(from * 10 + w.rank()) as u8]);
            }
        });
    }

    #[test]
    fn tagged_all_to_all_uses_the_user_tag() {
        let snaps = Runtime::run(3, |w| {
            // two rounds under the same tag: FIFO per sender keeps them apart
            for round in 0..2u8 {
                let outgoing: Vec<Vec<u8>> = (0..3)
                    .map(|to| vec![w.rank() as u8, to as u8, round])
                    .collect();
                let incoming = w.all_to_all_tagged(outgoing, 42);
                for (from, buf) in incoming.iter().enumerate() {
                    assert_eq!(buf, &vec![from as u8, w.rank() as u8, round]);
                }
            }
            w.metrics().snapshot()
        });
        for s in &snaps {
            // all traffic charged to tag 42, none to a collective tag
            assert_eq!(s.sent_by_tag.keys().copied().collect::<Vec<_>>(), vec![42]);
            assert_eq!(s.sent_by_tag[&42].0, 6, "3 dests × 2 rounds");
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        Runtime::run(4, |w| {
            for i in 0..50u64 {
                let s = w.all_reduce(i + w.rank() as u64, |a, b| a + b);
                assert_eq!(s, 4 * i + 6);
            }
        });
    }

    #[test]
    fn metrics_count_messages() {
        let snaps = Runtime::run(2, |w| {
            if w.rank() == 0 {
                w.send(1, 1, &vec![0u8; 100]);
            } else {
                let _: Vec<u8> = w.recv(0, 1);
            }
            w.metrics().snapshot()
        });
        let sent = snaps[0].totals();
        let recv = snaps[1].totals();
        assert_eq!(sent.msgs_sent, 1);
        assert_eq!(sent.bytes_sent, 108); // 8-byte length prefix + 100 payload
        assert_eq!(recv.msgs_recv, 1);
        assert_eq!(recv.bytes_recv, 108);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Runtime::run(8, |w| {
            counter.fetch_add(1, Ordering::SeqCst);
            w.barrier();
            // all ranks incremented before any proceeds
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }
}
