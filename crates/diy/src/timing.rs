//! Per-thread CPU timing for scaling experiments on oversubscribed hosts.
//!
//! The paper benchmarks on up to 16384 BG/P nodes; this reproduction runs
//! ranks as threads, usually on far fewer cores than ranks. Wall-clock time
//! would then measure the host's core count, not the algorithm. Instead we
//! time each rank with `CLOCK_THREAD_CPUTIME_ID` — the CPU time consumed by
//! that rank's thread only — and report the **critical path** (maximum over
//! ranks) as the parallel time. On a machine with ≥ nranks cores this
//! converges to wall-clock; on one core it still has the right scaling
//! shape, which is what the reproduction targets (see DESIGN.md).

/// CPU time consumed by the calling thread, in seconds.
pub fn thread_cpu_time() -> f64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid out-pointer; CLOCK_THREAD_CPUTIME_ID is always
    // supported on Linux.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0);
    ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
}

/// A stopwatch accumulating the calling thread's CPU time across intervals.
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadTimer {
    started: Option<f64>,
    accumulated: f64,
}

impl ThreadTimer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start (or restart) an interval.
    pub fn start(&mut self) {
        self.started = Some(thread_cpu_time());
    }

    /// End the current interval, adding it to the accumulated total.
    pub fn stop(&mut self) {
        if let Some(s) = self.started.take() {
            self.accumulated += thread_cpu_time() - s;
        }
    }

    /// Accumulated CPU seconds over all completed intervals.
    pub fn seconds(&self) -> f64 {
        self.accumulated
    }

    /// Time a closure, accumulating its thread CPU cost.
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        self.start();
        let r = f();
        self.stop();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_is_monotonic() {
        let a = thread_cpu_time();
        // burn a little CPU
        let mut x = 0u64;
        for i in 0..100_000 {
            x = x.wrapping_mul(31).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_time();
        assert!(b >= a);
    }

    #[test]
    fn timer_accumulates_work_not_sleep() {
        let mut t = ThreadTimer::new();
        t.time(|| {
            let mut x = 1u64;
            for i in 1..2_000_000u64 {
                x = x.wrapping_mul(i) ^ (x >> 7);
            }
            std::hint::black_box(x);
        });
        let busy = t.seconds();
        assert!(busy > 0.0);
        // sleeping does not consume thread CPU time
        let mut s = ThreadTimer::new();
        s.time(|| std::thread::sleep(std::time::Duration::from_millis(30)));
        assert!(s.seconds() < 0.02, "sleep measured {}", s.seconds());
    }

    #[test]
    fn unbalanced_stop_is_harmless() {
        let mut t = ThreadTimer::new();
        t.stop(); // no interval open
        assert_eq!(t.seconds(), 0.0);
        t.start();
        t.start(); // restart discards the first interval
        t.stop();
        assert!(t.seconds() >= 0.0);
    }
}
