//! `diy` — data-parallel building blocks for block-structured analysis.
//!
//! This crate reimplements the role DIY plays in the paper (Peterka et al.,
//! LDAV'11 / SC'12 §III-C): it owns the block decomposition, the neighborhood
//! connectivity (including **periodic boundary neighbors**), scalable
//! neighbor data exchange (including **targeted exchange** of particles near
//! block boundaries), collectives, and parallel block I/O to a single file.
//!
//! ## Distributed-memory model
//!
//! The paper runs over MPI on an IBM Blue Gene/P. Here the distributed
//! machine is *simulated*: [`comm::Runtime::run`] spawns one OS thread per
//! rank, each rank owns its block data privately, and every byte that
//! crosses a rank boundary is explicitly serialized through message channels
//! (see `DESIGN.md` for why this preserves the algorithmic behaviour). No
//! shared mutable state exists between ranks; the API is deliberately shaped
//! like a message-passing library so the algorithms above it are the same
//! ones that would run over MPI.

pub mod codec;
pub mod comm;
pub mod decomposition;
pub mod exchange;
pub mod hist;
pub mod io;
pub mod log;
pub mod mem;
pub mod metrics;
pub mod reduce;
pub mod telemetry;
pub mod timing;
pub mod trace;

/// Every binary linking `diy` counts allocations through [`mem`]; the
/// wrapper forwards to the system allocator and keeps a few relaxed
/// atomics (gated under 5% overhead by the `bench_memory` CI stage).
#[global_allocator]
static GLOBAL_ALLOCATOR: mem::CountingAlloc = mem::CountingAlloc;

pub use codec::{Decode, Encode, Reader};
pub use comm::{ResidentRuntime, Runtime, World};
pub use decomposition::{Assignment, Decomposition, Neighbor};
pub use exchange::NeighborExchange;
pub use hist::LogHistogram;
pub use metrics::{collect_report, MetricsHandle, RunReport};
pub use trace::{
    chrome_trace_json, collect_traces, set_trace_mode, trace_mode, validate_chrome_trace,
    RankTrace, TraceMode,
};
