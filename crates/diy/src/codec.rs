//! Deterministic little-endian binary serialization.
//!
//! Every payload that crosses a rank boundary or is written to storage goes
//! through these traits, so file layouts and message formats are explicit
//! and stable — the same property DIY gets from writing raw C structs, but
//! without `unsafe` transmutes.

use geometry::{Aabb, Vec3};

/// Serialize `self` onto the end of `buf` in little-endian byte order.
pub trait Encode {
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Deserialize a value from a [`Reader`].
pub trait Decode: Sized {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Convenience: decode a value from the start of `bytes`.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        Self::decode(&mut r)
    }
}

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remained than the value requires.
    UnexpectedEnd { needed: usize, remaining: usize },
    /// A length prefix or discriminant was out of range.
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEnd { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A cursor over a byte slice for decoding.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

macro_rules! impl_prim {
    ($t:ty) => {
        impl Encode for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                const N: usize = std::mem::size_of::<$t>();
                let b = r.take(N)?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("length checked")))
            }
        }
    };
}

impl_prim!(u8);
impl_prim!(u16);
impl_prim!(u32);
impl_prim!(u64);
impl_prim!(i8);
impl_prim!(i16);
impl_prim!(i32);
impl_prim!(i64);
impl_prim!(f32);
impl_prim!(f64);

impl Encode for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| CodecError::Invalid("usize overflow"))
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool discriminant")),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = u64::decode(r)? as usize;
        // Guard against corrupted length prefixes: each element takes at
        // least one byte in every encoding used here.
        if n > r.remaining() && std::mem::size_of::<T>() > 0 {
            return Err(CodecError::Invalid("vec length exceeds remaining bytes"));
        }
        let mut v = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(CodecError::Invalid("option discriminant")),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = u64::decode(r)? as usize;
        let b = r.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::Invalid("utf8"))
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<T: Encode, const N: usize> Encode for [T; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode + Copy + Default, const N: usize> Decode for [T; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::decode(r)?;
        }
        Ok(out)
    }
}

impl Encode for Vec3 {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.x.encode(buf);
        self.y.encode(buf);
        self.z.encode(buf);
    }
}

impl Decode for Vec3 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Vec3::new(f64::decode(r)?, f64::decode(r)?, f64::decode(r)?))
    }
}

impl Encode for Aabb {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.min.encode(buf);
        self.max.encode(buf);
    }
}

impl Decode for Aabb {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let min = Vec3::decode(r)?;
        let max = Vec3::decode(r)?;
        Ok(Aabb::new(min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX - 1);
        roundtrip(u64::MAX / 3);
        roundtrip(-123i32);
        roundtrip(i64::MIN);
        roundtrip(std::f64::consts::PI);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip(42usize);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u8));
        roundtrip(Option::<u8>::None);
        roundtrip("hello world ✨".to_string());
        roundtrip((1u32, 2.5f64));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip([1.0f64, 2.0, 3.0]);
        roundtrip(vec![Some((1u32, vec![2u8, 3])), None]);
    }

    #[test]
    fn geometry_roundtrip() {
        roundtrip(Vec3::new(1.5, -2.25, 1e-300));
        roundtrip(Aabb::cube(8.0));
    }

    #[test]
    fn encoding_is_little_endian_and_stable() {
        assert_eq!(0x0102_0304u32.to_bytes(), vec![4, 3, 2, 1]);
        assert_eq!(vec![1u8].to_bytes(), vec![1, 0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = 12345u64.to_bytes();
        assert!(matches!(
            u64::from_bytes(&bytes[..4]),
            Err(CodecError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn corrupt_length_prefix_errors() {
        // Claims 2^40 elements but has none.
        let mut bytes = Vec::new();
        (1u64 << 40).encode(&mut bytes);
        assert!(Vec::<u32>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn bad_discriminants_error() {
        assert!(bool::from_bytes(&[2]).is_err());
        assert!(Option::<u8>::from_bytes(&[9]).is_err());
    }

    #[test]
    fn sequential_decode_consumes_exactly() {
        let mut buf = Vec::new();
        1u32.encode(&mut buf);
        2.5f64.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(u32::decode(&mut r).unwrap(), 1);
        assert_eq!(f64::decode(&mut r).unwrap(), 2.5);
        assert!(r.is_empty());
    }
}
