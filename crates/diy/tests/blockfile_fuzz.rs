//! Fuzz-style property tests for the on-disk block-file format
//! (`diy::io`), mirroring `codec_fuzz.rs`: corrupting or truncating any
//! byte of a valid file must surface as a typed `io::Error` — never a
//! panic, and never silently wrong data — and the same logical content
//! round-trips bit-identically regardless of writer rank count or wave
//! layout.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use diy::comm::Runtime;
use diy::io::{read_all_blocks, read_index, write_blocks, BlockFileWriter};
use proptest::prelude::*;

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("diy-blockfile-fuzz");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Deterministic corpus: gid → payload of varied size and content.
fn corpus() -> Vec<(u64, Vec<u8>)> {
    (0..7u64)
        .map(|gid| {
            let len = 5 + (gid as usize * 41) % 90;
            let payload = (0..len)
                .map(|i| ((i * 37 + 13 * gid as usize) % 251) as u8)
                .collect();
            (gid, payload)
        })
        .collect()
}

/// Canonical file bytes, written once (spawning a runtime per proptest
/// case would dominate the test).
fn canonical_file() -> &'static [u8] {
    static FILE: OnceLock<Vec<u8>> = OnceLock::new();
    FILE.get_or_init(|| {
        let path = tmpfile("canonical.diy");
        Runtime::run(3, |w| {
            let mine: Vec<(u64, Vec<u8>)> = corpus()
                .into_iter()
                .filter(|(gid, _)| *gid as usize % w.nranks() == w.rank())
                .collect();
            // two waves so the wave machinery is in the fuzzed picture
            let mut writer = BlockFileWriter::create(w, &path).unwrap();
            writer.write_wave(w, &mine[..1]).unwrap();
            writer.write_wave(w, &mine[1..]).unwrap();
            writer.finish(w).unwrap();
        });
        std::fs::read(&path).unwrap()
    })
}

fn read_whole(path: &Path) -> std::io::Result<Vec<(u64, Vec<u8>)>> {
    read_all_blocks(path)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Any single-byte corruption anywhere in the file is detected: every
    /// byte is covered by the header checks, a payload checksum, the
    /// footer hash, or a validated trailer field.
    #[test]
    fn single_byte_corruption_is_detected(pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let pristine = canonical_file();
        let pos = ((pristine.len() as f64) * pos_frac) as usize;
        let pos = pos.min(pristine.len() - 1);
        let mut bytes = pristine.to_vec();
        bytes[pos] ^= flip;
        let path = tmpfile("corrupt-case.diy");
        std::fs::write(&path, &bytes).unwrap();
        let r = read_whole(&path);
        prop_assert!(r.is_err(), "flip {flip:#x} at byte {pos} went undetected");
    }

    /// Truncating the file at any point yields a typed error, not junk.
    #[test]
    fn truncation_is_detected(cut_frac in 0.0f64..1.0) {
        let pristine = canonical_file();
        let cut = ((pristine.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < pristine.len());
        let path = tmpfile("truncated-case.diy");
        std::fs::write(&path, &pristine[..cut]).unwrap();
        let r = read_whole(&path);
        prop_assert!(r.is_err(), "truncation to {cut} bytes went undetected");
    }

    /// Arbitrary byte soup never panics the readers.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let path = tmpfile("soup-case.diy");
        std::fs::write(&path, &bytes).unwrap();
        let _ = read_index(&path);
        let _ = read_whole(&path);
    }
}

/// The same logical blocks written at 1, 2, and 4 ranks with different
/// wave layouts read back identically (the file's canonical gid order
/// erases both the rank count and the wave structure).
#[test]
fn roundtrip_is_identical_across_rank_counts_and_waves() {
    let blocks = corpus();
    let mut images: Vec<Vec<(u64, Vec<u8>)>> = Vec::new();
    for nranks in [1usize, 2, 4] {
        let path = tmpfile(&format!("ranks{nranks}.diy"));
        let blocks2 = &blocks;
        Runtime::run(nranks, |w| {
            let mine: Vec<(u64, Vec<u8>)> = blocks2
                .iter()
                .filter(|(gid, _)| *gid as usize % w.nranks() == w.rank())
                .cloned()
                .collect();
            // one wave per block: the layout a streaming driver produces
            let mut writer = BlockFileWriter::create(w, &path).unwrap();
            let nwaves = w.all_reduce(mine.len() as u64, u64::max);
            for i in 0..nwaves as usize {
                let wave = mine.get(i).cloned().map(|b| vec![b]).unwrap_or_default();
                writer.write_wave(w, &wave).unwrap();
            }
            writer.finish(w).unwrap();
        });
        images.push(read_all_blocks(&path).unwrap());
    }
    assert_eq!(
        images[0], blocks,
        "canonical order returns the input corpus"
    );
    assert_eq!(images[0], images[1]);
    assert_eq!(images[0], images[2]);
}

/// Duplicate gids across ranks are rejected at finish time.
#[test]
fn duplicate_gids_are_rejected() {
    let path = tmpfile("dup.diy");
    let errs = Runtime::run(2, |w| {
        write_blocks(w, &path, &[(3u64, vec![w.rank() as u8; 4])]).unwrap_err()
    });
    for e in errs {
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }
}
