//! Quantile-accuracy contract for `LogHistogram`: on realistic sample
//! shapes, p50/p99 must land within one log2 bucket of the exact sorted
//! quantile, and merging histograms must commute with quantile-taking
//! bucket-wise. These bounds are what `bench_obs` and the telemetry
//! rolling-window summaries rely on.

use diy::hist::LogHistogram;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Box–Muller log-normal sampler: `exp(mu + sigma * z)`, z ~ N(0,1).
fn log_normal(rng: &mut ChaCha8Rng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mu + sigma * z).exp()
}

/// The log2 bucket a positive value falls in (bucket e covers
/// [2^e, 2^(e+1)), matching the histogram's binning).
fn bucket_of(v: f64) -> i32 {
    v.log2().floor() as i32
}

/// Exact quantile by sorting (nearest-rank on the scaled index, the same
/// convention the bench harnesses use).
fn exact_quantile(samples: &[f64], q: f64) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[((v.len() - 1) as f64 * q) as usize]
}

fn assert_within_one_bucket(samples: &[f64], what: &str) {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.observe(s);
    }
    for q in [0.5, 0.99] {
        let approx = h.quantile(q);
        let exact = exact_quantile(samples, q);
        let err = (bucket_of(approx) - bucket_of(exact)).abs();
        assert!(
            err <= 1,
            "{what}: q{q} approx {approx} is {err} log2 buckets from exact {exact}"
        );
    }
}

#[test]
fn uniform_samples_within_one_bucket() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let samples: Vec<f64> = (0..20_000).map(|_| rng.gen_range(1.0..1e6)).collect();
    assert_within_one_bucket(&samples, "uniform[1,1e6)");
    let narrow: Vec<f64> = (0..20_000).map(|_| rng.gen_range(100.0..200.0)).collect();
    assert_within_one_bucket(&narrow, "uniform[100,200)");
}

#[test]
fn log_normal_samples_within_one_bucket() {
    // Latency-shaped: heavy right tail spanning many decades.
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let samples: Vec<f64> = (0..20_000)
        .map(|_| log_normal(&mut rng, 8.0, 2.0))
        .collect();
    assert_within_one_bucket(&samples, "log-normal(8,2)");
}

#[test]
fn constant_samples_hit_their_own_bucket() {
    for c in [1.0, 3.5, 1024.0, 1e-6, 7.3e9] {
        let samples = vec![c; 5000];
        assert_within_one_bucket(&samples, "constant");
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.observe(s);
        }
        // Both quantiles return the bucket midpoint of c's own bucket.
        assert_eq!(bucket_of(h.quantile(0.5)), bucket_of(c));
        assert_eq!(bucket_of(h.quantile(0.99)), bucket_of(c));
    }
}

#[test]
fn merge_then_quantile_equals_quantile_of_concatenation() {
    // Three disjoint shards with very different shapes.
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let shards: Vec<Vec<f64>> = vec![
        (0..5000).map(|_| rng.gen_range(1.0..100.0)).collect(),
        (0..3000).map(|_| rng.gen_range(1e4..1e7)).collect(),
        vec![42.0; 2000],
    ];
    let mut merged = LogHistogram::new();
    let mut concat_hist = LogHistogram::new();
    let mut concat: Vec<f64> = Vec::new();
    for shard in &shards {
        let mut h = LogHistogram::new();
        for &s in shard {
            h.observe(s);
            concat_hist.observe(s);
        }
        merged.merge(&h);
        concat.extend_from_slice(shard);
    }
    // Bucket-wise the merge IS the concatenation...
    assert_eq!(merged.n(), concat.len() as u64);
    let buckets = |h: &LogHistogram| h.buckets().collect::<Vec<_>>();
    assert_eq!(buckets(&merged), buckets(&concat_hist));
    // ...so every quantile agrees exactly between the two paths...
    for q in [0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        assert_eq!(
            merged.quantile(q),
            concat_hist.quantile(q),
            "merge/concat disagree at q{q}"
        );
    }
    // ...and still tracks the exact sorted quantiles within a bucket.
    assert_within_one_bucket(&concat, "merged shards");
    // Merge order is immaterial.
    let mut reversed = LogHistogram::new();
    for shard in shards.iter().rev() {
        let mut h = LogHistogram::new();
        for &s in shard {
            h.observe(s);
        }
        reversed.merge(&h);
    }
    assert_eq!(buckets(&reversed), buckets(&merged));
    assert_eq!(reversed.quantile(0.99), merged.quantile(0.99));
}

#[test]
fn zeros_and_negatives_do_not_shift_positive_quantiles_up() {
    // Zeros count toward rank mass at the bottom; a median over mostly
    // zeros is 0, and a p99 over mostly positives stays bucket-accurate.
    let mut h = LogHistogram::new();
    for _ in 0..9000 {
        h.observe(0.0);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let positives: Vec<f64> = (0..1000).map(|_| rng.gen_range(512.0..1024.0)).collect();
    for &p in &positives {
        h.observe(p);
    }
    assert_eq!(h.quantile(0.5), 0.0);
    let p999 = h.quantile(0.999);
    let exact = exact_quantile(&positives, 0.99);
    assert!(
        (bucket_of(p999) - bucket_of(exact)).abs() <= 1,
        "tail quantile over zero-heavy stream drifted: {p999} vs {exact}"
    );
}
