//! Property tests for the mergeable log-bucket histogram: merging must be
//! commutative and associative (the reduction tree combines rank
//! histograms in an order that depends on the rank count, and the merged
//! report must not), with exact counts and only float-rounding slack on
//! the running sum.

use diy::hist::LogHistogram;
use proptest::prelude::*;

/// Samples covering every observation class: positives across many
/// magnitudes, zeros, negatives, NaN, and infinities.
fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u8..6, 1e-12f64..1e12), 0..32).prop_map(|xs| {
        xs.into_iter()
            .map(|(kind, x)| match kind {
                0 | 1 => x,
                2 => -x,
                3 => 0.0,
                4 => f64::NAN,
                _ => f64::INFINITY,
            })
            .collect()
    })
}

fn hist_of(samples: &[f64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.observe(s);
    }
    h
}

fn merged(a: &LogHistogram, b: &LogHistogram) -> LogHistogram {
    let mut m = a.clone();
    m.merge(b);
    m
}

/// Equality up to float rounding on `sum` (counts, buckets, and min/max
/// must be exact — they merge with integer adds and f64::min/max).
fn assert_equivalent(x: &LogHistogram, y: &LogHistogram) -> Result<(), TestCaseError> {
    prop_assert_eq!(x.n(), y.n());
    prop_assert_eq!(x.zeros(), y.zeros());
    prop_assert_eq!(x.negatives(), y.negatives());
    prop_assert_eq!(x.invalid(), y.invalid());
    prop_assert_eq!(
        x.buckets().collect::<Vec<_>>(),
        y.buckets().collect::<Vec<_>>()
    );
    prop_assert_eq!(x.min().to_bits(), y.min().to_bits());
    prop_assert_eq!(x.max().to_bits(), y.max().to_bits());
    let tol = 1e-9 * x.sum().abs().max(y.sum().abs()).max(1.0);
    prop_assert!((x.sum() - y.sum()).abs() <= tol);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn merge_is_commutative(a in arb_samples(), b in arb_samples()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        assert_equivalent(&merged(&ha, &hb), &merged(&hb, &ha))?;
    }

    #[test]
    fn merge_is_associative(a in arb_samples(), b in arb_samples(), c in arb_samples()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let left = merged(&merged(&ha, &hb), &hc);
        let right = merged(&ha, &merged(&hb, &hc));
        assert_equivalent(&left, &right)?;
    }

    #[test]
    fn merge_with_empty_is_identity(a in arb_samples()) {
        let ha = hist_of(&a);
        let empty = LogHistogram::new();
        // empty on either side: bit-exact (no float adds can reorder)
        prop_assert_eq!(&merged(&ha, &empty), &ha);
        prop_assert_eq!(&merged(&empty, &ha), &ha);
    }

    #[test]
    fn merge_equals_observing_the_concatenation(a in arb_samples(), b in arb_samples()) {
        // counts must match a single-pass histogram over a ++ b exactly
        let m = merged(&hist_of(&a), &hist_of(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let whole = hist_of(&all);
        prop_assert_eq!(m.n(), whole.n());
        prop_assert_eq!(m.zeros(), whole.zeros());
        prop_assert_eq!(m.negatives(), whole.negatives());
        prop_assert_eq!(m.invalid(), whole.invalid());
        prop_assert_eq!(
            m.buckets().collect::<Vec<_>>(),
            whole.buckets().collect::<Vec<_>>()
        );
        prop_assert_eq!(m.min().to_bits(), whole.min().to_bits());
        prop_assert_eq!(m.max().to_bits(), whole.max().to_bits());
    }
}
