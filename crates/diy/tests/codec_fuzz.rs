//! Fuzz-style property tests for the binary codec: decoding arbitrary
//! bytes must never panic (only return errors), and every encodable value
//! round-trips.

use diy::codec::{Decode, Encode};
use geometry::{Aabb, Vec3};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary byte soup: decode returns Ok or Err, never panics.
    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = u64::from_bytes(&bytes);
        let _ = f64::from_bytes(&bytes);
        let _ = bool::from_bytes(&bytes);
        let _ = String::from_bytes(&bytes);
        let _ = Vec::<u32>::from_bytes(&bytes);
        let _ = Vec::<(u64, f64)>::from_bytes(&bytes);
        let _ = Option::<Vec<u8>>::from_bytes(&bytes);
        let _ = Vec3::from_bytes(&bytes);
        let _ = Vec::<(u64, Vec3)>::from_bytes(&bytes);
    }

    /// Truncating a valid encoding at any point yields an error, not junk
    /// (for types whose decoders consume the full payload).
    #[test]
    fn truncation_is_detected(
        items in proptest::collection::vec((any::<u64>(), -1e12f64..1e12), 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = items.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            let r = Vec::<(u64, f64)>::from_bytes(&bytes[..cut]);
            // either a clean error, or a prefix decode shorter than items
            // (impossible here: the length prefix pins the count)
            prop_assert!(r.is_err());
        }
    }

    /// Round-trip for nested structures.
    #[test]
    fn nested_roundtrip(
        rows in proptest::collection::vec(
            (any::<u64>(),
             proptest::collection::vec(-1e9f64..1e9, 0..8),
             proptest::option::of(any::<bool>())),
            0..16
        )
    ) {
        let bytes = rows.to_bytes();
        let back = Vec::<(u64, Vec<f64>, Option<bool>)>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, rows);
    }

    /// Vec3/Aabb round-trip bit-exactly for finite values.
    #[test]
    fn geometry_roundtrip(
        v in (-1e12f64..1e12, -1e12f64..1e12, -1e12f64..1e12),
        e in (0.0f64..1e6, 0.0f64..1e6, 0.0f64..1e6),
    ) {
        let p = Vec3::new(v.0, v.1, v.2);
        prop_assert_eq!(Vec3::from_bytes(&p.to_bytes()).unwrap(), p);
        let b = Aabb::new(p, p + Vec3::new(e.0, e.1, e.2));
        prop_assert_eq!(Aabb::from_bytes(&b.to_bytes()).unwrap(), b);
    }
}
