//! Fuzz-style property tests for the binary codec: decoding arbitrary
//! bytes must never panic (only return errors), and every encodable value
//! round-trips.

use diy::codec::{Decode, Encode};
use diy::hist::LogHistogram;
use diy::metrics::{MemStats, NamedHist, PhaseReport, RunReport, SlowCell, TagTraffic};
use geometry::{Aabb, Vec3};
use proptest::prelude::*;
use tess::stats::TessStats;

/// Strategy for an arbitrary [`LogHistogram`] (built by observation so the
/// internal invariants hold, NaN and negatives included).
fn arb_hist() -> impl Strategy<Value = LogHistogram> {
    proptest::collection::vec((0u8..4, -1e12f64..1e12), 0..24).prop_map(|xs| {
        let mut h = LogHistogram::new();
        for (kind, x) in xs {
            h.observe(match kind {
                0 => x,
                1 => 0.0,
                2 => f64::NAN,
                _ => f64::INFINITY,
            });
        }
        h
    })
}

/// Strategy for an arbitrary (not necessarily conserved) [`RunReport`].
fn arb_report() -> impl Strategy<Value = RunReport> {
    (
        1u64..64,
        proptest::collection::vec(
            (
                proptest::collection::vec(32u8..127, 0..12),
                0.0f64..1e6,
                0.0f64..1e6,
                any::<u32>(),
                any::<u64>(),
                any::<u32>(),
                any::<u64>(),
                any::<u32>(),
                any::<u32>(),
            ),
            0..6,
        ),
        proptest::collection::vec(
            (
                any::<u64>(),
                any::<u32>(),
                any::<u64>(),
                any::<u32>(),
                any::<u64>(),
            ),
            0..6,
        ),
        proptest::collection::vec(
            (proptest::collection::vec(32u8..127, 0..10), arb_hist()),
            0..4,
        ),
        proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            0..8,
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(|(nranks, phases, tags, hists, slow, mem)| RunReport {
            nranks,
            phases: phases
                .into_iter()
                .map(
                    |(name, cpu_max_s, cpu_sum_s, ms, bs, mr, br, coll, slowest)| PhaseReport {
                        name: String::from_utf8(name).unwrap(),
                        cpu_max_s,
                        cpu_sum_s,
                        slowest_rank: slowest as u64,
                        msgs_sent: ms as u64,
                        bytes_sent: bs,
                        msgs_recv: mr as u64,
                        bytes_recv: br,
                        collectives: coll as u64,
                    },
                )
                .collect(),
            tags: tags
                .into_iter()
                .map(|(tag, ms, bs, mr, br)| TagTraffic {
                    tag,
                    msgs_sent: ms as u64,
                    bytes_sent: bs,
                    msgs_recv: mr as u64,
                    bytes_recv: br,
                })
                .collect(),
            hists: hists
                .into_iter()
                .map(|(name, hist)| NamedHist {
                    name: String::from_utf8(name).unwrap(),
                    hist,
                })
                .collect(),
            slow_cells: slow
                .into_iter()
                .map(|(ns, gid, particle, rank)| SlowCell {
                    ns,
                    gid,
                    particle,
                    rank,
                })
                .collect(),
            memory: MemStats {
                alloc_count: mem.0,
                alloc_bytes_total: mem.1,
                live_bytes: mem.2,
                peak_live_bytes: mem.3,
                rss_kb: mem.4,
                peak_rss_kb: mem.5,
            },
        })
}

fn arb_stats() -> impl Strategy<Value = TessStats> {
    // 13 fields exceed the shim's widest tuple impl, so nest the work
    // counters in a sub-tuple.
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(
            |(
                sites,
                ghosts_received,
                cells,
                incomplete,
                incomplete_kept,
                culled_early,
                culled_late,
                verts,
                faces,
                (ghost_rounds, candidates_tested, prefilter_skipped, cells_computed, cells_reused),
            )| {
                TessStats {
                    sites,
                    ghosts_received,
                    cells,
                    incomplete,
                    incomplete_kept,
                    culled_early,
                    culled_late,
                    verts,
                    faces,
                    ghost_rounds,
                    candidates_tested,
                    prefilter_skipped,
                    cells_computed,
                    cells_reused,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary byte soup: decode returns Ok or Err, never panics.
    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = u64::from_bytes(&bytes);
        let _ = f64::from_bytes(&bytes);
        let _ = bool::from_bytes(&bytes);
        let _ = String::from_bytes(&bytes);
        let _ = Vec::<u32>::from_bytes(&bytes);
        let _ = Vec::<(u64, f64)>::from_bytes(&bytes);
        let _ = Option::<Vec<u8>>::from_bytes(&bytes);
        let _ = Vec3::from_bytes(&bytes);
        let _ = Vec::<(u64, Vec3)>::from_bytes(&bytes);
    }

    /// Truncating a valid encoding at any point yields an error, not junk
    /// (for types whose decoders consume the full payload).
    #[test]
    fn truncation_is_detected(
        items in proptest::collection::vec((any::<u64>(), -1e12f64..1e12), 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = items.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            let r = Vec::<(u64, f64)>::from_bytes(&bytes[..cut]);
            // either a clean error, or a prefix decode shorter than items
            // (impossible here: the length prefix pins the count)
            prop_assert!(r.is_err());
        }
    }

    /// Round-trip for nested structures.
    #[test]
    fn nested_roundtrip(
        rows in proptest::collection::vec(
            (any::<u64>(),
             proptest::collection::vec(-1e9f64..1e9, 0..8),
             proptest::option::of(any::<bool>())),
            0..16
        )
    ) {
        let bytes = rows.to_bytes();
        let back = Vec::<(u64, Vec<f64>, Option<bool>)>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, rows);
    }

    /// [`RunReport`] round-trips through the codec bit-exactly, and its
    /// merged-report views survive (conservation verdict, totals).
    #[test]
    fn run_report_roundtrip(report in arb_report()) {
        let bytes = report.to_bytes();
        let back = RunReport::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &report);
        prop_assert_eq!(back.is_conserved(), report.is_conserved());
        prop_assert_eq!(back.traffic_totals(), report.traffic_totals());
    }

    /// Truncating a [`RunReport`] encoding anywhere yields `CodecError`,
    /// never a panic or a silently short report.
    #[test]
    fn run_report_truncation_is_detected(
        report in arb_report(),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = report.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(RunReport::from_bytes(&bytes[..cut]).is_err());
        }
    }

    /// Arbitrary byte soup never panics the report/stats decoders.
    #[test]
    fn report_decoders_survive_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let _ = RunReport::from_bytes(&bytes);
        let _ = TessStats::from_bytes(&bytes);
    }

    /// [`TessStats`] round-trips bit-exactly; truncation is a clean error.
    #[test]
    fn tess_stats_roundtrip_and_truncation(
        stats in arb_stats(),
        cut in 0usize..112,
    ) {
        let bytes = stats.to_bytes();
        prop_assert_eq!(bytes.len(), 112); // 14 × u64
        prop_assert_eq!(TessStats::from_bytes(&bytes).unwrap(), stats);
        if cut < bytes.len() {
            prop_assert!(TessStats::from_bytes(&bytes[..cut]).is_err());
        }
    }

    /// Vec3/Aabb round-trip bit-exactly for finite values.
    #[test]
    fn geometry_roundtrip(
        v in (-1e12f64..1e12, -1e12f64..1e12, -1e12f64..1e12),
        e in (0.0f64..1e6, 0.0f64..1e6, 0.0f64..1e6),
    ) {
        let p = Vec3::new(v.0, v.1, v.2);
        prop_assert_eq!(Vec3::from_bytes(&p.to_bytes()).unwrap(), p);
        let b = Aabb::new(p, p + Vec3::new(e.0, e.1, e.2));
        prop_assert_eq!(Aabb::from_bytes(&b.to_bytes()).unwrap(), b);
    }
}
