//! Property tests for targeted destination identification
//! ([`NeighborExchange::destinations_near`]): the returned links are
//! *exactly* the neighbor blocks whose ghost-extended bounds reach the
//! (periodically transformed) particle. Point generation is biased onto
//! block faces, edges, and corners — the cases where a particle must fan
//! out to 1, 3, or 7 neighbors and where an off-by-one in the periodic
//! transform flips the answer.

use diy::decomposition::{Assignment, Decomposition};
use diy::exchange::NeighborExchange;
use geometry::{Aabb, Vec3};
use proptest::prelude::*;

/// Independent oracle: Euclidean distance from `q` to `b`, written as
/// clamp-then-norm rather than the per-axis-excess form the library uses.
fn dist_to_box(b: &Aabb, q: Vec3) -> f64 {
    let clamped = Vec3::new(
        q.x.clamp(b.min.x, b.max.x),
        q.y.clamp(b.min.y, b.max.y),
        q.z.clamp(b.min.z, b.max.z),
    );
    (q - clamped).norm()
}

/// Place a coordinate inside block bounds `[lo, hi]` according to `mode`:
/// exactly on a face (0, 1), a hair inside a face (2, 3), or in the
/// interior (anything else, using `t` as the interpolation factor).
fn place(lo: f64, hi: f64, mode: usize, t: f64) -> f64 {
    let eps = (hi - lo) * 1e-9;
    match mode {
        0 => lo,
        1 => hi,
        2 => lo + eps,
        3 => hi - eps,
        _ => lo + (hi - lo) * t,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// `destinations_near` returns exactly the neighbor links whose
    /// (transform-adjusted) block bounds lie within `ghost` of the
    /// particle — face, edge, and corner placements included.
    #[test]
    fn destinations_match_ghost_extended_bounds(
        dims in (1usize..=4, 1usize..=4, 1usize..=4),
        periodic in (any::<bool>(), any::<bool>(), any::<bool>()),
        origin in -50.0f64..50.0,
        size in 1.0f64..32.0,
        gid_frac in 0.0f64..1.0,
        modes in (0usize..6, 0usize..6, 0usize..6),
        ts in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        ghost_frac in 0.0f64..0.8,
    ) {
        let domain = Aabb::new(Vec3::splat(origin), Vec3::splat(origin + size));
        let dims = [dims.0, dims.1, dims.2];
        let periodic = [periodic.0, periodic.1, periodic.2];
        let dec = Decomposition::with_dims(domain, dims, periodic);
        let nblocks = dec.nblocks();
        let asn = Assignment::new(nblocks, 1);
        let ex = NeighborExchange::new(&dec, &asn);

        let gid = ((gid_frac * nblocks as f64) as u64).min(nblocks as u64 - 1);
        let b = dec.block_bounds(gid);
        let p = Vec3::new(
            place(b.min.x, b.max.x, modes.0, ts.0),
            place(b.min.y, b.max.y, modes.1, ts.1),
            place(b.min.z, b.max.z, modes.2, ts.2),
        );
        // ghost spans from "touching only" to most of a block
        let block_edge = (size / dims[0] as f64)
            .min(size / dims[1] as f64)
            .min(size / dims[2] as f64);
        let ghost = ghost_frac * block_edge;

        let got = ex.destinations_near(gid, p, ghost);

        // exactness against the oracle, link by link: same multiset of
        // (gid, xform) pairs
        let all = dec.neighbors(gid);
        let expect: Vec<_> = all
            .iter()
            .filter(|n| dist_to_box(&dec.block_bounds(n.gid), p + n.xform) <= ghost)
            .collect();
        prop_assert_eq!(got.len(), expect.len(), "p={:?} ghost={}", p, ghost);
        for n in &got {
            prop_assert!(
                expect.iter().any(|m| m.gid == n.gid && m.xform == n.xform),
                "unexpected destination {:?}",
                n
            );
        }

        // a face/edge/corner placement with nonzero ghost must reach the
        // blocks sharing that face/edge/corner (when they exist as links):
        // every link whose transformed frame puts the point *on* the
        // neighbor's boundary is within any nonzero ghost
        for n in &all {
            if dist_to_box(&dec.block_bounds(n.gid), p + n.xform) == 0.0 {
                prop_assert!(
                    got.iter().any(|m| m.gid == n.gid && m.xform == n.xform),
                    "touching neighbor {:?} missing at ghost={}",
                    n,
                    ghost
                );
            }
        }
    }

    /// A ghost larger than the domain diagonal reaches every neighbor
    /// link; ghost 0 still reaches all links the particle touches (corner
    /// particles fan out to the full corner neighborhood).
    #[test]
    fn ghost_extremes(
        dims in (1usize..=3, 1usize..=3, 1usize..=3),
        periodic in (any::<bool>(), any::<bool>(), any::<bool>()),
        gid_frac in 0.0f64..1.0,
        corner in (0usize..2, 0usize..2, 0usize..2),
    ) {
        let size = 9.0;
        let domain = Aabb::cube(size);
        let dims = [dims.0, dims.1, dims.2];
        let periodic = [periodic.0, periodic.1, periodic.2];
        let dec = Decomposition::with_dims(domain, dims, periodic);
        let nblocks = dec.nblocks();
        let asn = Assignment::new(nblocks, 1);
        let ex = NeighborExchange::new(&dec, &asn);
        let gid = ((gid_frac * nblocks as f64) as u64).min(nblocks as u64 - 1);
        let b = dec.block_bounds(gid);

        // particle exactly on one of the block's corners
        let p = Vec3::new(
            if corner.0 == 0 { b.min.x } else { b.max.x },
            if corner.1 == 0 { b.min.y } else { b.max.y },
            if corner.2 == 0 { b.min.z } else { b.max.z },
        );

        let all = dec.neighbors(gid);
        let everywhere = ex.destinations_near(gid, p, size * 4.0);
        prop_assert_eq!(everywhere.len(), all.len(), "huge ghost must reach all links");

        // at ghost 0 the corner particle still touches every block sharing
        // that corner: in each dimension the neighbor step toward the corner
        // (or staying) keeps distance 0, so ≥ the corner's link count when
        // those links exist
        let touching = ex.destinations_near(gid, p, 0.0);
        for n in &touching {
            prop_assert!(
                dist_to_box(&dec.block_bounds(n.gid), p + n.xform) == 0.0,
                "ghost 0 must only return touching blocks"
            );
        }
        // and conversely every touching link is returned
        let n_touch = all
            .iter()
            .filter(|n| dist_to_box(&dec.block_bounds(n.gid), p + n.xform) == 0.0)
            .count();
        prop_assert_eq!(touching.len(), n_touch);
    }

    /// Periodic wrap: a particle at the low domain face targets the block
    /// on the far side through the periodic link, and the transformed
    /// coordinate it would be sent with lands within ghost of that block.
    #[test]
    fn periodic_seam_targets_far_side(
        dims_x in 2usize..=4,
        off_frac in 0.0f64..0.2,
    ) {
        let size = 8.0;
        let dec = Decomposition::with_dims(
            Aabb::cube(size),
            [dims_x, 1, 1],
            [true, false, false],
        );
        let asn = Assignment::new(dims_x, 1);
        let ex = NeighborExchange::new(&dec, &asn);
        let ghost = 0.5 * size / dims_x as f64;
        // near the x=0 seam, inside block 0, within ghost of the seam
        let p = Vec3::new(off_frac * ghost, size * 0.5, size * 0.5);

        let got = ex.destinations_near(0, p, ghost);
        let far = dec.nblocks() as u64 - 1;
        let wrapped: Vec<_> = got.iter().filter(|n| n.gid == far && n.periodic).collect();
        prop_assert_eq!(wrapped.len(), 1, "expected exactly one periodic link to block {}", far);
        let n = wrapped[0];
        // the transform shifts the particle up by the domain length so the
        // receiver sees it adjacent to its own bounds
        prop_assert!((n.xform.x - size).abs() < 1e-12);
        prop_assert!(dist_to_box(&dec.block_bounds(far), p + n.xform) <= ghost);
    }
}
