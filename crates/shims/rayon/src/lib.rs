//! Offline stand-in for `rayon`: the `into_par_iter().map().collect()`
//! surface used by `tess::block`, executed on a real work-stealing chunk
//! pool (see [`pool`]).
//!
//! Determinism contract: chunks are claimed dynamically, but every result is
//! slotted by item index and concatenated in index order, so `collect()`
//! is **bit-identical to the sequential run** for any thread count. CPU
//! spent on pool threads is accumulated per job and handed back to the
//! submitting thread ([`pool::take_pool_cpu_seconds`]) so `diy::metrics`
//! phase spans — which run on per-thread CPU clocks — can attribute it to
//! the enclosing rank span instead of losing it.
//!
//! Thread count: `TESS_THREADS` if set, else the host's available
//! parallelism; tests sweep it at runtime via [`pool::set_max_parallelism`].

pub mod pool;

pub use pool::{
    max_parallelism, set_max_parallelism, set_task_trace, take_pool_cpu_seconds, take_pool_tasks,
    PoolTask, THREADS_ENV,
};

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// The adapter surface the workspace consumes: `map` + `collect`.
///
/// `map`'s closure must be `Fn + Sync` (not `FnMut`): it is shared by every
/// pool thread cooperating on the job.
pub trait ParallelIterator: Sized {
    type Item: Send;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    fn drive(self) -> Vec<Self::Item>;

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_vec(self.drive())
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T> {
    fn from_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_vec(v: Vec<T>) -> Self {
        v
    }
}

pub struct Map<B, F> {
    base: B,
    f: F,
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter(std::ops::Range<usize>);

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn drive(self) -> Vec<usize> {
        self.0.collect()
    }
}

impl<R, F> ParallelIterator for Map<RangeIter, F>
where
    R: Send,
    F: Fn(usize) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        let range = self.base.0;
        let n = range.len();
        let chunk = pool::chunk_size(n);
        let chunks = n.div_ceil(chunk);
        let f = &self.f;
        let start = range.start;
        let end = range.end;
        let per_chunk = pool::run_ordered(chunks, |k| {
            let lo = start + k * chunk;
            let hi = (lo + chunk).min(end);
            (lo..hi).map(f).collect::<Vec<R>>()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// Parallel iterator over `Vec<T>`.
pub struct VecIter<T>(Vec<T>);

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.0
    }
}

impl<T, R, F> ParallelIterator for Map<VecIter<T>, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        let mut items = self.base.0;
        let n = items.len();
        let chunk = pool::chunk_size(n);
        let chunks = n.div_ceil(chunk);
        // Pre-split into owned per-chunk vectors so pool threads can take
        // their chunk's items by value without aliasing.
        let mut slots: Vec<std::sync::Mutex<Vec<T>>> = Vec::with_capacity(chunks);
        for _ in 0..chunks {
            let tail = items.split_off(chunk.min(items.len()));
            slots.push(std::sync::Mutex::new(std::mem::replace(&mut items, tail)));
        }
        let f = &self.f;
        let per_chunk = pool::run_ordered(chunks, |k| {
            let taken = std::mem::take(&mut *slots[k].lock().unwrap());
            taken.into_iter().map(f).collect::<Vec<R>>()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeIter;
    fn into_par_iter(self) -> Self::Iter {
        RangeIter(self)
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        VecIter(self)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..10).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn vec_into_par_iter() {
        let v: Vec<i32> = vec![3, 1, 2].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v, vec![4, 2, 3]);
    }

    #[test]
    fn large_range_is_position_stable() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 3 + 1).collect();
        assert_eq!(v.len(), 10_000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 3 + 1);
        }
    }

    #[test]
    fn large_vec_is_position_stable() {
        let input: Vec<u64> = (0..5_000).map(|i| i * 7).collect();
        let expect: Vec<u64> = input.iter().map(|x| x + 1).collect();
        let v: Vec<u64> = input.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v, expect);
    }
}
