//! Offline stand-in for `rayon`: the `into_par_iter().map().collect()`
//! surface used by `tess::block`, executed **sequentially on the calling
//! thread**.
//!
//! Sequential execution is a deliberate choice, not just a simplification:
//! the rank runtime already runs one OS thread per rank (usually
//! oversubscribed), and `diy::metrics` attributes cost via per-thread CPU
//! clocks — work stolen onto a pool thread would vanish from the phase
//! accounting. Keeping intra-block work on the rank thread preserves both
//! determinism and exact critical-path measurement.

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a "parallel" iterator (sequential here).
pub trait IntoParallelIterator {
    type Item;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// The adapter surface the workspace consumes: `map` + `collect`.
pub trait ParallelIterator: Sized {
    type Item;

    fn map<R, F: FnMut(Self::Item) -> R>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    fn drive(self, out: &mut Vec<Self::Item>);

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        let mut out = Vec::new();
        self.drive(&mut out);
        C::from_vec(out)
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T> {
    fn from_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_vec(v: Vec<T>) -> Self {
        v
    }
}

pub struct IterAdapter<I>(I);

impl<I: Iterator> ParallelIterator for IterAdapter<I> {
    type Item = I::Item;

    fn drive(self, out: &mut Vec<Self::Item>) {
        out.extend(self.0);
    }
}

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B: ParallelIterator, R, F: FnMut(B::Item) -> R> ParallelIterator for Map<B, F> {
    type Item = R;

    fn drive(self, out: &mut Vec<R>) {
        let mut base = Vec::new();
        self.base.drive(&mut base);
        out.extend(base.into_iter().map(self.f));
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = IterAdapter<std::ops::Range<usize>>;
    fn into_par_iter(self) -> Self::Iter {
        IterAdapter(self)
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterAdapter<std::vec::IntoIter<T>>;
    fn into_par_iter(self) -> Self::Iter {
        IterAdapter(self.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..10).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn vec_into_par_iter() {
        let v: Vec<i32> = vec![3, 1, 2].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v, vec![4, 2, 3]);
    }
}
