//! The work-stealing chunk pool behind the `par_iter` surface.
//!
//! A fixed set of worker threads is spawned on first use. Callers submit a
//! *job* — a closure over chunk indices `0..total` — into a shared injector
//! queue; idle workers steal chunks from any queued job by bumping an atomic
//! cursor, and the submitting thread claims chunks alongside them so a job
//! always makes progress even when every worker is busy. Results are slotted
//! by chunk index, so the concatenation order is independent of which thread
//! ran which chunk and of the thread count.
//!
//! CPU accounting: `diy::metrics` attributes cost via per-thread CPU clocks,
//! so work stolen onto a pool thread would vanish from the rank's phase
//! spans. Each worker therefore measures its thread-CPU delta per chunk and
//! accumulates it on the job; when the submitting thread finishes waiting it
//! drains that total into a thread-local, which the driver forwards to the
//! enclosing metrics span via [`take_pool_cpu_seconds`].

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Environment variable fixing the worker-pool parallelism (threads
/// cooperating on one job, submitter included). Unset: available
/// parallelism.
pub const THREADS_ENV: &str = "TESS_THREADS";

/// Parallelism cap used when a job is submitted; 0 means "not yet
/// initialised" (resolved from the environment on first read).
static MAX_PARALLELISM: AtomicUsize = AtomicUsize::new(0);

fn default_parallelism() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Threads (submitter included) allowed to cooperate on one job.
pub fn max_parallelism() -> usize {
    match MAX_PARALLELISM.load(Ordering::Relaxed) {
        0 => {
            let n = default_parallelism();
            // Keep a concurrent `set_max_parallelism` win: only replace 0.
            let _ = MAX_PARALLELISM.compare_exchange(0, n, Ordering::Relaxed, Ordering::Relaxed);
            MAX_PARALLELISM.load(Ordering::Relaxed)
        }
        n => n,
    }
}

/// Override the parallelism cap at runtime (tests sweep 1/2/8 in one
/// process; the environment variable is only read once). Returns the
/// previous value.
pub fn set_max_parallelism(n: usize) -> usize {
    let prev = max_parallelism();
    MAX_PARALLELISM.store(n.max(1), Ordering::Relaxed);
    prev
}

fn thread_cpu_ns() -> u64 {
    let mut ts = libc::timespec::default();
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

fn monotonic_ns() -> u64 {
    let mut ts = libc::timespec::default();
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_MONOTONIC, &mut ts) };
    debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_MONOTONIC) failed");
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// One chunk execution, recorded when task tracing is on: which worker ran
/// which chunk, and when (wall-clock `CLOCK_MONOTONIC` nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolTask {
    /// 0 = the submitting thread; `1 + i` = pool worker `i`.
    pub worker: u32,
    pub start_ns: u64,
    pub end_ns: u64,
    pub chunk: u64,
}

/// Per-chunk task recording (off by default: one relaxed load per chunk).
static TASK_TRACE: AtomicBool = AtomicBool::new(false);

/// Enable/disable per-chunk task recording; returns the previous setting.
/// The driver flips this on when the flight recorder runs in full mode.
pub fn set_task_trace(on: bool) -> bool {
    TASK_TRACE.swap(on, Ordering::Relaxed)
}

thread_local! {
    /// Pool CPU seconds charged to jobs this thread submitted, not yet
    /// drained by [`take_pool_cpu_seconds`].
    static PENDING_POOL_CPU: Cell<f64> = const { Cell::new(0.0) };
    /// This thread's stable worker id (0 for non-pool threads).
    static WORKER_ID: Cell<u32> = const { Cell::new(0) };
    /// Tasks recorded by jobs this thread submitted, not yet drained by
    /// [`take_pool_tasks`].
    static PENDING_POOL_TASKS: RefCell<Vec<PoolTask>> = const { RefCell::new(Vec::new()) };
}

/// Drain the pool-thread CPU seconds accumulated by jobs this thread has
/// submitted since the last drain. The caller is expected to feed this into
/// the metrics span that enclosed the parallel work.
pub fn take_pool_cpu_seconds() -> f64 {
    PENDING_POOL_CPU.with(|c| c.replace(0.0))
}

/// Drain the per-chunk tasks recorded (under [`set_task_trace`]) by jobs
/// this thread has submitted since the last drain.
pub fn take_pool_tasks() -> Vec<PoolTask> {
    PENDING_POOL_TASKS.with(|t| std::mem::take(&mut *t.borrow_mut()))
}

type RunFn = dyn Fn(usize) + Sync;

/// One submitted job: `total` chunks claimed via `next`, run through the
/// erased closure. The closure pointer is only dereferenced between a
/// successful claim (`next.fetch_add < total`) and the matching `done`
/// increment; the submitter blocks until `done == total`, so the borrow it
/// erases outlives every dereference.
struct Job {
    run: *const RunFn,
    total: usize,
    next: AtomicUsize,
    /// Workers currently cooperating (submitter excluded).
    helpers: AtomicUsize,
    max_helpers: usize,
    /// Pool-thread CPU nanoseconds spent on this job's chunks. Updated
    /// before the corresponding `done` increment, so it is complete once
    /// `done == total`.
    cpu_ns: AtomicU64,
    /// Per-chunk task records (only filled under [`set_task_trace`]).
    tasks: Mutex<Vec<PoolTask>>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<usize>,
    all_done: Condvar,
}

// SAFETY: the raw closure pointer is the only non-Send/Sync field; see the
// struct docs for the lifetime discipline that makes sharing it sound.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claim and run chunks until none remain. Worker threads pass
    /// `record_cpu = true` so their thread-CPU lands on the job; the
    /// submitter's own CPU is already on its thread clock.
    fn work(&self, record_cpu: bool) {
        loop {
            let k = self.next.fetch_add(1, Ordering::AcqRel);
            if k >= self.total {
                return;
            }
            let t0 = if record_cpu { thread_cpu_ns() } else { 0 };
            let tracing = TASK_TRACE.load(Ordering::Relaxed);
            let w0 = if tracing { monotonic_ns() } else { 0 };
            // AssertUnwindSafe: on panic the job is poisoned via the panic
            // slot and the submitter rethrows; partial results are dropped.
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*self.run)(k) }));
            if tracing {
                let task = PoolTask {
                    worker: WORKER_ID.with(Cell::get),
                    start_ns: w0,
                    end_ns: monotonic_ns(),
                    chunk: k as u64,
                };
                self.tasks.lock().unwrap().push(task);
            }
            if record_cpu {
                self.cpu_ns
                    .fetch_add(thread_cpu_ns().saturating_sub(t0), Ordering::AcqRel);
            }
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut done = self.done.lock().unwrap();
            *done += 1;
            if *done == self.total {
                self.all_done.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Acquire) >= self.total
    }
}

struct PoolState {
    queue: Mutex<Vec<Arc<Job>>>,
    work_available: Condvar,
}

struct Pool {
    state: Arc<PoolState>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Upper bound on spawned workers; jobs are further capped by the
/// parallelism setting at submit time.
const MAX_WORKERS: usize = 15;

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let state = Arc::new(PoolState {
            queue: Mutex::new(Vec::new()),
            work_available: Condvar::new(),
        });
        // Spawn enough workers for tests that raise the cap above the host
        // parallelism (determinism sweeps use up to 8 threads on any host);
        // excess workers idle on the condvar.
        let workers = default_parallelism().max(8).min(MAX_WORKERS + 1) - 1;
        for i in 0..workers {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("tess-pool-{i}"))
                .spawn(move || {
                    WORKER_ID.with(|w| w.set(1 + i as u32));
                    worker_loop(&state)
                })
                .expect("spawn pool worker");
        }
        Pool { state }
    })
}

fn worker_loop(state: &PoolState) {
    loop {
        let job = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                queue.retain(|j| !j.exhausted());
                let claimed = queue.iter().find_map(|j| {
                    if j.helpers.fetch_add(1, Ordering::AcqRel) < j.max_helpers {
                        Some(Arc::clone(j))
                    } else {
                        j.helpers.fetch_sub(1, Ordering::AcqRel);
                        None
                    }
                });
                match claimed {
                    Some(j) => break j,
                    None => queue = state.work_available.wait(queue).unwrap(),
                }
            }
        };
        job.work(true);
        job.helpers.fetch_sub(1, Ordering::AcqRel);
        // A helper slot freed up; another worker may now join this job.
        state.work_available.notify_all();
    }
}

/// Run `run(0..chunks)` across the pool and return the results in chunk
/// order. Falls back to a plain sequential loop when the parallelism cap is
/// 1 or there is at most one chunk, keeping single-thread runs free of any
/// pool machinery.
pub fn run_ordered<R, F>(chunks: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let parallelism = max_parallelism();
    if parallelism <= 1 || chunks <= 1 {
        if !TASK_TRACE.load(Ordering::Relaxed) {
            return (0..chunks).map(run).collect();
        }
        // Sequential fallback still records tasks so traced single-thread
        // runs show the same per-chunk timeline shape.
        return (0..chunks)
            .map(|k| {
                let start_ns = monotonic_ns();
                let r = run(k);
                let task = PoolTask {
                    worker: 0,
                    start_ns,
                    end_ns: monotonic_ns(),
                    chunk: k as u64,
                };
                PENDING_POOL_TASKS.with(|t| t.borrow_mut().push(task));
                r
            })
            .collect();
    }

    let slots: Vec<Mutex<Option<R>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let store = |k: usize| {
        let r = run(k);
        *slots[k].lock().unwrap() = Some(r);
    };
    let run_ref: &(dyn Fn(usize) + Sync) = &store;
    // SAFETY: erase the borrow's lifetime; `Job`'s claim/done protocol and
    // the completion wait below keep every dereference inside it.
    let run_ptr: *const RunFn = unsafe { std::mem::transmute(run_ref) };
    let job = Arc::new(Job {
        run: run_ptr,
        total: chunks,
        next: AtomicUsize::new(0),
        helpers: AtomicUsize::new(0),
        max_helpers: parallelism - 1,
        cpu_ns: AtomicU64::new(0),
        tasks: Mutex::new(Vec::new()),
        panic: Mutex::new(None),
        done: Mutex::new(0),
        all_done: Condvar::new(),
    });

    let state = &pool().state;
    state.queue.lock().unwrap().push(Arc::clone(&job));
    state.work_available.notify_all();

    // The submitter helps: claim chunks like any worker (without charging
    // CPU to the job — it is already on this thread's clock).
    job.work(false);

    let mut done = job.done.lock().unwrap();
    while *done < job.total {
        done = job.all_done.wait(done).unwrap();
    }
    drop(done);
    state.queue.lock().unwrap().retain(|j| !Arc::ptr_eq(j, &job));

    let cpu = job.cpu_ns.load(Ordering::Acquire);
    if cpu > 0 {
        PENDING_POOL_CPU.with(|c| c.set(c.get() + cpu as f64 * 1e-9));
    }
    {
        let mut tasks = job.tasks.lock().unwrap();
        if !tasks.is_empty() {
            PENDING_POOL_TASKS.with(|t| t.borrow_mut().append(&mut tasks));
        }
    }
    if let Some(payload) = job.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap()
                .expect("every chunk ran exactly once")
        })
        .collect()
}

/// Chunk size for `n` items: coarse enough to amortise claim overhead,
/// fine enough that stealing balances uneven cells. Deliberately independent
/// of the thread count (chunking never affects output order anyway, but a
/// stable shape keeps timings comparable across sweeps).
pub fn chunk_size(n: usize) -> usize {
    (n / 64).max(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this binary share the global parallelism cap; serialise the
    /// ones that change it.
    static CAP_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn ordered_results_across_thread_counts() {
        let _g = CAP_LOCK.lock().unwrap();
        let expect: Vec<usize> = (0..1000).map(|i| i * i).collect();
        for threads in [1, 2, 8] {
            let prev = set_max_parallelism(threads);
            let got = run_ordered(100, |k| (k * 10..k * 10 + 10).map(|i| i * i).collect::<Vec<_>>());
            set_max_parallelism(prev);
            let flat: Vec<usize> = got.into_iter().flatten().collect();
            assert_eq!(flat, expect, "threads={threads}");
        }
    }

    #[test]
    fn pool_cpu_is_charged_to_the_submitter() {
        let _g = CAP_LOCK.lock().unwrap();
        let prev = set_max_parallelism(4);
        take_pool_cpu_seconds(); // reset
        let v = run_ordered(64, |k| {
            // Busy work so worker CPU deltas are measurable.
            let mut acc = k as u64;
            for i in 0..200_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        });
        set_max_parallelism(prev);
        assert_eq!(v.len(), 64);
        let cpu = take_pool_cpu_seconds();
        assert!(cpu >= 0.0);
        assert_eq!(take_pool_cpu_seconds(), 0.0);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let _g = CAP_LOCK.lock().unwrap();
        let prev = set_max_parallelism(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_ordered(32, |k| {
                if k == 17 {
                    panic!("chunk 17 exploded");
                }
                k
            })
        }));
        set_max_parallelism(prev);
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "chunk 17 exploded");
    }

    #[test]
    fn sequential_fallback_handles_zero_chunks() {
        let v: Vec<usize> = run_ordered(0, |k| k);
        assert!(v.is_empty());
    }

    #[test]
    fn task_trace_records_every_chunk_once() {
        let _g = CAP_LOCK.lock().unwrap();
        for threads in [1usize, 4] {
            let prev = set_max_parallelism(threads);
            let prev_trace = set_task_trace(true);
            take_pool_tasks(); // reset
            let v = run_ordered(10, |k| k * 2);
            set_task_trace(prev_trace);
            set_max_parallelism(prev);
            assert_eq!(v.len(), 10);
            let mut tasks = take_pool_tasks();
            assert_eq!(tasks.len(), 10, "threads={threads}");
            tasks.sort_by_key(|t| t.chunk);
            for (i, t) in tasks.iter().enumerate() {
                assert_eq!(t.chunk, i as u64);
                assert!(t.end_ns >= t.start_ns);
            }
            assert!(take_pool_tasks().is_empty());
        }
    }

    #[test]
    fn task_trace_off_records_nothing() {
        let _g = CAP_LOCK.lock().unwrap();
        let prev = set_max_parallelism(4);
        take_pool_tasks();
        let _ = run_ordered(8, |k| k);
        set_max_parallelism(prev);
        assert!(take_pool_tasks().is_empty());
    }
}
