//! Offline stand-in for `criterion`: the `bench_function`/`Bencher::iter`
//! surface the microbenchmarks use, backed by a plain median-of-samples
//! wall-clock loop. No statistics beyond median and spread; good enough to
//! compare kernels on one machine, not across machines.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Environment variable naming a file to receive every benchmark result as
/// JSON when the harness exits (see [`flush_json`]).
pub const JSON_ENV: &str = "CRITERION_JSON";

/// `(name, lo, median, hi)` seconds-per-iteration of every finished
/// benchmark in this process.
static RESULTS: Mutex<Vec<(String, f64, f64, f64)>> = Mutex::new(Vec::new());

/// Write all results recorded so far to the path in `$CRITERION_JSON` (a
/// no-op when unset). Called by [`criterion_main!`] after the groups run,
/// so `CRITERION_JSON=bench.json cargo bench` yields machine-readable
/// output without touching the benchmark sources.
pub fn flush_json() {
    let Ok(path) = std::env::var(JSON_ENV) else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, lo, median, hi)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"lo_s\": {lo:e}, \"median_s\": {median:e}, \"hi_s\": {hi:e}}}{sep}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion: cannot write {path}: {e}");
    }
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up and iteration-count calibration: grow the per-sample
        // iteration count until one sample takes ~1/sample_size of the
        // measurement budget.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let target = self.measurement_time / self.sample_size as u32;
        loop {
            f(&mut b);
            if b.elapsed >= target || Instant::now() >= warm_deadline {
                break;
            }
            b.iters = (b.iters * 2).min(1 << 30);
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let lo = samples[samples.len() / 10];
        let hi = samples[samples.len() - 1 - samples.len() / 10];
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi)
        );
        RESULTS
            .lock()
            .unwrap()
            .push((name.to_string(), lo, median, hi));
        self
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `f`; the harness reads back the elapsed
    /// time and per-iteration cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}us", s * 1e6)
    } else {
        format!("{:.1}ns", s * 1e9)
    }
}

/// Group form with `name =` / `config =` / `targets =` (the only form the
/// workspace uses) plus the plain positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::flush_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            calls += 1;
            b.iter(|| 1 + 1)
        });
        assert!(calls >= 3);
        let results = RESULTS.lock().unwrap();
        let (_, lo, median, hi) = results
            .iter()
            .find(|(n, ..)| n == "noop")
            .expect("result recorded");
        assert!(*lo <= *median && *median <= *hi);
    }
}
