//! Offline stand-in for `proptest`: a deterministic property-testing
//! harness covering the surface this workspace uses — the `proptest!`
//! macro, range/tuple/`vec`/`option`/`any` strategies, `prop_map`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its seed and case index; the
//!   whole run is deterministic, so rerunning reproduces it exactly.
//! * Cases derive from a fixed per-test seed (FNV of the test name) plus
//!   the case index. `PROPTEST_CASES` overrides the case count.

use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// The per-case random source handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Deterministic RNG for case `case` of test `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h ^ case.wrapping_mul(0x9E3779B97F4A7C15)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Harness configuration; only `cases` is meaningful in this shim, the
/// remaining fields exist so struct-update syntax against the real crate's
/// field names keeps compiling.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65536,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }

    /// Case count after applying the `PROPTEST_CASES` override.
    pub fn resolved_cases(&self) -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases as u64)
    }
}

/// Why a test case did not pass: a hard failure or a filtered input.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { base: self, f, whence }
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;

    fn sample(&self, rng: &mut TestRng) -> R {
        (self.f)(self.base.sample(rng))
    }
}

pub struct Filter<S, F> {
    base: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.whence);
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    };
}

impl_range_strategy!(f64);
impl_range_strategy!(u8);
impl_range_strategy!(u16);
impl_range_strategy!(u32);
impl_range_strategy!(u64);
impl_range_strategy!(usize);
impl_range_strategy!(i8);
impl_range_strategy!(i16);
impl_range_strategy!(i32);
impl_range_strategy!(i64);
impl_range_strategy!(isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8, J => 9);

/// Full-domain strategies for primitives (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($t:ty) => {
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    };
}

impl_arbitrary_int!(u8);
impl_arbitrary_int!(u16);
impl_arbitrary_int!(u32);
impl_arbitrary_int!(u64);
impl_arbitrary_int!(usize);
impl_arbitrary_int!(i8);
impl_arbitrary_int!(i16);
impl_arbitrary_int!(i32);
impl_arbitrary_int!(i64);
impl_arbitrary_int!(isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix of magnitudes plus the occasional special value, always
        // avoiding NaN (the real crate samples NaN too, but no test here
        // relies on it and NaN breaks Eq-based assertions).
        match rng.next_u64() % 8 {
            0 => 0.0,
            1 => rng.gen_range(-1.0..1.0),
            2 => rng.gen_range(-1e300..1e300),
            3 => f64::MAX,
            4 => f64::MIN,
            _ => {
                let exp = rng.gen_range(-300i32..300) as f64;
                rng.gen_range(-1.0f64..1.0) * 10f64.powf(exp)
            }
        }
    }
}

pub mod collection {
    use super::*;

    /// How many elements a generated collection may hold.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector of `size` samples of `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                a,
                b,
                file!(),
                line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} vs {:?} ({}) at {}:{}",
                a,
                b,
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                a,
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The test-defining macro. Each function body runs once per case with its
/// parameters sampled from the given strategies; `prop_assume!` rejections
/// skip to the next case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                let mut rejected: u64 = 0;
                let mut case: u64 = 0;
                let mut executed: u64 = 0;
                while executed < cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    case += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match result {
                        Ok(()) => executed += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects as u64,
                                "too many prop_assume! rejections ({rejected})"
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of `{}` failed (rerun is deterministic): {}",
                                case - 1,
                                stringify!($name),
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy as _;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_sample_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0u8..=255, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn assume_rejects_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn map_and_tuple_compose(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p), "sum {}", p);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let sample = |case| {
            let mut rng = crate::TestRng::for_case("det", case);
            crate::collection::vec(0u64..1000, 5).sample(&mut rng)
        };
        assert_eq!(sample(3), sample(3));
        assert_ne!(sample(3), sample(4));
    }
}
