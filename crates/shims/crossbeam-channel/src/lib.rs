//! Offline stand-in for `crossbeam-channel`: the `unbounded` MPSC surface
//! this workspace uses, implemented over `std::sync::mpsc`. The rank
//! runtime (`diy::comm`) gives each receiver to exactly one thread, so
//! the std channel's single-consumer restriction is not observable.

use std::sync::mpsc;

pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}

pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.0.iter()
    }
}

/// An unbounded channel: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41u32).unwrap());
        tx.send(1).unwrap();
        let sum = rx.recv().unwrap() + rx.recv().unwrap();
        assert_eq!(sum, 42);
    }
}
