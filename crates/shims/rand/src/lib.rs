//! Offline stand-in for `rand` 0.8: the trait surface this workspace uses
//! (`Rng::gen_range` over float/integer ranges and
//! `SeedableRng::seed_from_u64`). Generators live in sibling shims (e.g.
//! `rand_chacha`); this crate only defines the traits and range sampling.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniformly random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as `gen_range` arguments.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map a `u64` to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.start.max(f64_prev(self.end))
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_one(rng) as f32
    }
}

/// Largest double strictly below `x` (for clamping half-open float ranges).
fn f64_prev(x: f64) -> f64 {
    if x == 0.0 {
        -f64::MIN_POSITIVE
    } else if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else {
        f64::from_bits(x.to_bits() + 1)
    }
}

/// Unbiased integer sampling in `[0, n)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range in gen_range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // full-width range: every u64 value is valid
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    };
}

impl_int_range!(u8);
impl_int_range!(u16);
impl_int_range!(u32);
impl_int_range!(u64);
impl_int_range!(usize);
impl_int_range!(i8);
impl_int_range!(i16);
impl_int_range!(i32);
impl_int_range!(i64);
impl_int_range!(isize);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&v));
            let w = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = Counter(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
        }
    }
}
