//! Offline stand-in for `rand_chacha`: a deterministic, seedable generator
//! under the `ChaCha8Rng` name. The stream is xoshiro256++ seeded via
//! SplitMix64 — deterministic and statistically strong, but **not** the
//! real ChaCha8 keystream (nothing in this workspace depends on the exact
//! stream, only on seeded determinism).

use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let v: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
    }
}
