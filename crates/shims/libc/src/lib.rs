//! Offline stand-in for the `libc` crate: only the symbols this workspace
//! uses (`clock_gettime` with `CLOCK_THREAD_CPUTIME_ID`, for per-thread CPU
//! timing in `diy::timing`).

#![allow(non_camel_case_types)]

pub type time_t = i64;
pub type c_long = i64;
pub type c_int = i32;
pub type clockid_t = c_int;

#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

/// Linux `CLOCK_MONOTONIC` (see `linux/time.h`).
pub const CLOCK_MONOTONIC: clockid_t = 1;

/// Linux `CLOCK_THREAD_CPUTIME_ID` (see `linux/time.h`).
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

extern "C" {
    pub fn clock_gettime(clockid: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_clock_ticks() {
        let mut ts = timespec::default();
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0);
        assert!(ts.tv_sec >= 0 && ts.tv_nsec >= 0);
    }
}
