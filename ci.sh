#!/usr/bin/env sh
# Continuous-integration gate (no forge runner in this environment; run
# locally or from any scheduler). Fails on the first broken step.
#
#   ./ci.sh            full gate: build, tests, formatting, lints
#
# Everything runs offline: external dependencies resolve to the vendored
# shims under crates/shims/ (see crates/shims/README.md).
set -eu

echo "==> cargo build --release (workspace)"
cargo build --release --workspace

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> rank-determinism suite at 8 ranks (release)"
# The cross-rank ghost invariants (bit-identical merged mesh at 1/2/4/8
# ranks, adaptive certification) are cheap in release mode and guard the
# exchange protocol; run them explicitly so optimized codegen is covered.
cargo test --release -q -p meshing-universe --test ghost_adaptive

echo "==> perf smoke: threaded+incremental vs sequential baseline"
# Bit-identical meshes, conservation, >=2x cells/sec over the sequential
# full-recompute baseline, and <30% regression against the committed
# crates/bench/perf_baseline.json (PERF_BASELINE_WRITE=1 regenerates it).
TESS_THREADS=4 cargo run --release -q -p bench-harness --bin perf_smoke

echo "==> trace smoke: 4-rank traced run, Chrome-trace validation, <10% overhead"
# Runs the perf_smoke workload untraced and under TESS_TRACE=full, asserts
# the traced mesh is bit-identical and the wall-clock overhead stays under
# 10%, and validates the exported Chrome-trace JSON (parses, balanced B/E
# pairs per track, monotonic timestamps). Artifact:
# bench-out/trace_np16_r4.trace.json (openable at ui.perfetto.dev).
TESS_THREADS=4 cargo run --release -q -p bench-harness --bin trace_export

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings (all targets)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> CI green"
