#!/usr/bin/env sh
# Continuous-integration gate (no forge runner in this environment; run
# locally or from any scheduler). Fails on the first broken step.
#
#   ./ci.sh            full gate: every stage below, with a timing summary
#   ./ci.sh full       same
#   ./ci.sh quick      build + test + fmt + clippy (no release suites)
#   ./ci.sh <stage>..  run the named stage(s) only, e.g. ./ci.sh memory schema
#
# Stages: build test ghost kernel perf trace service decomp memory obs
#         schema fmt clippy
#
# Everything runs offline: external dependencies resolve to the vendored
# shims under crates/shims/ (see crates/shims/README.md).
set -eu

# ---- stage timing ----------------------------------------------------------
TIMING_LOG="${TMPDIR:-/tmp}/ci-stage-times.$$"
: > "$TIMING_LOG"
CUR_STAGE=""
CUR_START=0
trap 'print_summary' EXIT

print_summary() {
    status=$?
    # A stage that died mid-flight (errexit) never logged its row; add it.
    if [ "$status" -ne 0 ] && [ -n "$CUR_STAGE" ]; then
        printf '%s\t%s\t%s\n' "$CUR_STAGE" "$(($(date +%s) - CUR_START))" "FAILED" >> "$TIMING_LOG"
    fi
    if [ -s "$TIMING_LOG" ]; then
        echo
        echo "==> stage timing summary"
        awk -F'\t' '{ printf "    %-10s %6ss  %s\n", $1, $2, $3 }' "$TIMING_LOG"
    fi
    rm -f "$TIMING_LOG"
    [ "$status" -eq 0 ] || echo "==> CI FAILED"
}

run_stage() {
    CUR_STAGE="$1"
    CUR_START=$(date +%s)
    # The stage must NOT run as an `if`/`&&`/`||` condition: a tested
    # context suppresses errexit inside the whole function body, so in a
    # multi-command stage only the last command's status would be checked.
    # Called plainly, the first failing command aborts the script and the
    # EXIT trap records the FAILED row for the summary table.
    "stage_$CUR_STAGE"
    printf '%s\t%s\t%s\n' "$CUR_STAGE" "$(($(date +%s) - CUR_START))" "ok" >> "$TIMING_LOG"
    CUR_STAGE=""
}

# ---- stages ----------------------------------------------------------------

stage_build() {
    echo "==> [build] cargo build --release (workspace)"
    cargo build --release --workspace
}

stage_test() {
    echo "==> [test] cargo test -q (workspace)"
    cargo test -q --workspace
}

stage_ghost() {
    echo "==> [ghost] rank-determinism suite at 8 ranks (release)"
    # The cross-rank ghost invariants (bit-identical merged mesh at 1/2/4/8
    # ranks, adaptive certification) are cheap in release mode and guard the
    # exchange protocol; run them explicitly so optimized codegen is covered.
    cargo test --release -q -p meshing-universe --test ghost_adaptive
}

stage_kernel() {
    echo "==> [kernel] ring vs stream differential oracle (release)"
    # The two cell kernels (TESS_KERNEL=ring|stream) must produce bit-identical
    # merged meshes across 1/2/4/8 ranks, pool widths, incremental-vs-full
    # re-tessellation, explicit+adaptive ghost modes, and kept-incomplete
    # configurations — and the streamed kernel must clip measurably fewer
    # candidates for the identical mesh.
    cargo test --release -q -p meshing-universe --test kernel_equivalence &&
        cargo test --release -q -p meshing-universe --test adversarial_corpus
}

stage_perf() {
    echo "==> [perf] ring/stream kernels, threaded+incremental vs sequential baseline"
    # Bit-identical meshes across all three configs, conservation, >=2x fewer
    # candidates/cell for the streamed kernel (deterministic), >=2x cells/sec
    # over the sequential full-recompute baseline, and <30% regression against
    # the committed crates/bench/perf_baseline.json (PERF_BASELINE_WRITE=1
    # regenerates it after an intentional perf change).
    TESS_THREADS=4 cargo run --release -q -p bench-harness --bin perf_smoke
}

stage_trace() {
    echo "==> [trace] 4-rank traced run, Chrome-trace validation, <10% overhead"
    # Runs the perf_smoke workload untraced and under TESS_TRACE=full, asserts
    # the traced mesh is bit-identical and the wall-clock overhead stays under
    # 10%, and validates the exported Chrome-trace JSON (parses, balanced B/E
    # pairs per track, monotonic timestamps). Artifact:
    # bench-out/trace_np16_r4.trace.json (openable at ui.perfetto.dev).
    TESS_THREADS=4 cargo run --release -q -p bench-harness --bin trace_export
}

stage_service() {
    echo "==> [service] query-oracle + snapshot-consistency suites (release)"
    # The resident mesh service: batched point lookups vs a brute-force
    # nearest-seed oracle (exact f64, canonical tie-breaks, periodic images),
    # box/region extraction vs full-cell filters with 1e-9 volume conservation,
    # raced queries matching exactly one epoch's oracle mesh, and writer-epoch
    # × reader-thread stress with exactly-once request-id accounting.
    cargo test --release -q -p meshing-universe --test service_oracle &&
        cargo test --release -q -p meshing-universe --test service_property &&
        cargo test --release -q -p meshing-universe --test service_stress &&
        echo "==> [service] 4-rank mixed query/update smoke, bit-identity + p99 bound" &&
    # bench_service hammers the service from 4 client threads while a particle
    # delta lands mid-flight, then gates on (1) the post-update published mesh
    # being bit-identical to a from-scratch recompute of the final particle
    # set, (2) every response carrying a valid epoch, (3) exactly-once
    # accounting, and (4) client-observed p99 latency under SERVICE_P99_MS
    # (default 500 ms). Writes the `service` section of BENCH_TESS.json.
        TESS_THREADS=4 cargo run --release -q -p bench-harness --bin bench_service &&
        # End-to-end smoke of the tess-serve binary's scripted query/update loop.
        cargo run --release -q -p tess --bin tess-serve -- --box 8 --n 200 --demo
}

stage_decomp() {
    echo "==> [decomp] kd equivalence + suites under TESS_DECOMP=kd"
    # The scheme-polymorphic decomposition: (1) the dedicated equivalence
    # matrix proves the merged mesh is bit-identical between the regular grid
    # and the particle-balanced k-d tree across 1/2/4/8 ranks, both kernels,
    # and explicit+adaptive ghosts; (2) the rank-determinism, kernel-oracle,
    # and service-oracle suites rerun with every decomposition built as a k-d
    # tree, so all of their invariants hold on irregular block geometry too.
    cargo test --release -q -p meshing-universe --test decomposition_equivalence &&
        TESS_DECOMP=kd cargo test --release -q -p meshing-universe --test ghost_adaptive &&
        TESS_DECOMP=kd cargo test --release -q -p meshing-universe --test kernel_equivalence &&
        TESS_DECOMP=kd cargo test --release -q -p meshing-universe --test service_oracle
    # Clustered-corpus A/B perf gate at 8 ranks (modeled parallel wall at
    # pool width 1): kd must hit >=1.4x cells/sec over regular with rank
    # imbalance <=1.25 (regular >=3.0) — asserted inside perf_smoke (the
    # perf stage), which also records decomp/imbalance in BENCH_TESS.json.
}

stage_memory() {
    echo "==> [memory] streaming output + on-disk format + memory accounting gates"
    # (1) the streamed-vs-accumulated acceptance matrix: bit-identical
    # files at 1/2/4/8 ranks under both decomposition schemes and both
    # kernels, adaptive multi-round streaming, culled streaming, RunReport
    # memory counters; (2) the on-disk codec fuzz: any single-byte
    # corruption or truncation of a block file is a typed error, never a
    # panic; (3) bench_memory: 8-rank clustered streaming vs accumulate A/B
    # gating on allocator peak (<0.8x), VmHWM growth, the culled
    # bytes/particle budget, and <5% allocation-accounting overhead.
    # Writes the `memory` section of BENCH_TESS.json.
    cargo test --release -q -p meshing-universe --test streaming_output &&
        cargo test --release -q -p diy --test blockfile_fuzz &&
        cargo run --release -q -p bench-harness --bin bench_memory
}

stage_obs() {
    echo "==> [obs] telemetry neutrality/overhead/round-trip + history trend gate"
    # (1) unit + integration suites for the metric registry, log formats,
    # histogram quantile contracts, and the service's live instruments /
    # request-scoped tracing; (2) bench_obs: telemetry-on mesh bit-identical
    # to telemetry-off at 4 ranks, <5% wall overhead, Prometheus exposition
    # round-trips through the parser with exact scalar values, rolling p99
    # within one log2 bucket of exact. Writes the `telemetry` section of
    # BENCH_TESS.json. (3) bench_trend: the newest BENCH_HISTORY.jsonl row
    # per (bench,label) must stay within 30% of the median of the last 5 —
    # run AFTER perf/service so their freshly appended rows are judged.
    cargo test --release -q -p diy --test hist_quantiles &&
        cargo test --release -q -p meshing-universe --test service_telemetry &&
        TESS_THREADS=4 cargo run --release -q -p bench-harness --bin bench_obs &&
        cargo run --release -q -p bench-harness --bin bench_trend
}

stage_schema() {
    echo "==> [schema] BENCH_TESS.json schema gate"
    # The bench artifact written by the perf/service/memory/obs stages must
    # parse and carry the full key set of every section (entries / service
    # / memory / telemetry) — a harness emitting a malformed or truncated
    # document fails here instead of shipping.
    cargo run --release -q -p bench-harness --bin bench_schema_check
}

stage_fmt() {
    echo "==> [fmt] cargo fmt --check"
    cargo fmt --check
}

stage_clippy() {
    echo "==> [clippy] cargo clippy -D warnings (all targets)"
    cargo clippy --workspace --all-targets -- -D warnings
}

# ---- drivers ---------------------------------------------------------------

ALL_STAGES="build test ghost kernel perf trace service decomp memory obs schema fmt clippy"
QUICK_STAGES="build test fmt clippy"

case "${1:-full}" in
full)
    for s in $ALL_STAGES; do run_stage "$s"; done
    ;;
quick)
    for s in $QUICK_STAGES; do run_stage "$s"; done
    ;;
*)
    for s in "$@"; do
        case " $ALL_STAGES " in
        *" $s "*) run_stage "$s" ;;
        *)
            echo "ci.sh: unknown stage '$s' (stages: $ALL_STAGES)" >&2
            exit 2
            ;;
        esac
    done
    ;;
esac

echo "==> CI green"
