//! Umbrella crate for the *Meshing the Universe* reproduction.
//!
//! Re-exports every subsystem so examples and integration tests can depend on
//! a single crate. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured results.

pub use delaunay;
pub use diy;
pub use fft3d;
pub use framework;
pub use geometry;
pub use hacc;
pub use postprocess;
pub use rand;
pub use rand_chacha;
pub use rayon;
pub use tess;
