//! Render Figure-1-style imagery: the Voronoi tessellation of an evolved
//! box as SVG, plus a Figure-9-style sequence of rising volume thresholds.
//!
//! ```sh
//! cargo run --release --example render_universe
//! # → universe.svg, universe_t0.50.svg, … in the working directory
//! ```

use meshing_universe::geometry::Aabb;
use meshing_universe::hacc;
use meshing_universe::postprocess::render::{render_to_file, RenderOptions};
use meshing_universe::tess::{self, TessParams};

fn main() {
    let np = 32;
    let nsteps = 80;
    println!("evolving {np}^3 particles for {nsteps} steps…");
    let params = hacc::SimParams::paper_like(np);
    let cosmo = hacc::Cosmology::default();
    let ic = hacc::ic::zeldovich(
        &hacc::ic::IcParams {
            np,
            box_size: params.box_size,
            seed: params.seed,
            delta_rms: params.initial_delta_rms,
            spectrum: params.spectrum,
        },
        &cosmo,
        params.a_init,
    );
    let solver = hacc::PmSolver::new(np, cosmo);
    let (mut pos, mut mom) = (ic.positions, ic.momenta);
    for k in 0..nsteps {
        solver.step(&mut pos, &mut mom, params.a_at(k), params.da_at(k));
    }
    let particles: Vec<(u64, _)> = pos
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p))
        .collect();

    println!("tessellating…");
    let (block, _) = tess::tessellate_serial(
        &particles,
        Aabb::cube(np as f64),
        [true; 3],
        &TessParams::default(),
    );
    let blocks = vec![block];

    // A slab view (8 Mpc/h deep), like the paper's figures — full-depth
    // renders of 32³ cells produce very large SVGs.
    let slab = RenderOptions {
        zmin: 14.0,
        zmax: 18.0,
        ..RenderOptions::default()
    };
    render_to_file(&blocks, &slab, "universe.svg".as_ref()).unwrap();
    println!("wrote universe.svg");
    for threshold in [0.5, 0.75, 1.0] {
        let name = format!("universe_t{threshold:.2}.svg");
        render_to_file(
            &blocks,
            &RenderOptions {
                vmin: threshold,
                ..slab
            },
            name.as_ref(),
        )
        .unwrap();
        println!("wrote {name} (cells above {threshold} (Mpc/h)^3 — voids emerge)");
    }
}
