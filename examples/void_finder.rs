//! Void finder: evolve a small universe, tessellate it, threshold the cell
//! volumes, label connected components, and characterize each void with
//! Minkowski functionals — the paper's end-to-end analysis (Figures 7/9).
//!
//! ```sh
//! cargo run --release --example void_finder
//! ```

use std::collections::HashSet;

use meshing_universe::geometry::Aabb;
use meshing_universe::hacc;
use meshing_universe::postprocess::{label_components_serial, minkowski_functionals, VolumeFilter};
use meshing_universe::tess::{self, TessParams};

fn main() {
    let np = 24usize.next_power_of_two(); // 32
    let nsteps = 60;
    println!("evolving {np}^3 particles for {nsteps} steps…");
    let params = hacc::SimParams::paper_like(np);
    let cosmo = hacc::Cosmology::default();
    let ic = hacc::ic::zeldovich(
        &hacc::ic::IcParams {
            np,
            box_size: params.box_size,
            seed: params.seed,
            delta_rms: params.initial_delta_rms,
            spectrum: params.spectrum,
        },
        &cosmo,
        params.a_init,
    );
    let solver = hacc::PmSolver::new(np, cosmo);
    let (mut pos, mut mom) = (ic.positions, ic.momenta);
    for k in 0..nsteps {
        solver.step(&mut pos, &mut mom, params.a_at(k), params.da_at(k));
    }
    let particles: Vec<(u64, _)> = pos
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p))
        .collect();

    println!("tessellating…");
    let domain = Aabb::cube(np as f64);
    let (block, stats) =
        tess::tessellate_serial(&particles, domain, [true; 3], &TessParams::default());
    println!("{} cells ({} dropped)", stats.cells, stats.incomplete);
    let blocks = vec![block];

    // Threshold at 10% of the volume range (the paper's void heuristic).
    let filter = VolumeFilter::fraction_of_range(&blocks, 0.1);
    println!("volume threshold: {:.3} (Mpc/h)^3", filter.min);

    let comps = label_components_serial(&blocks, filter.min);
    println!(
        "{} connected components above the threshold",
        comps.num_components()
    );

    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>8} {:>7} {:>9} {:>8} {:>8}",
        "void", "cells", "volume", "area", "curv", "genus", "thick", "breadth", "length"
    );
    for (label, summary) in comps.by_volume().into_iter().take(10) {
        let sites: HashSet<u64> = comps
            .labels
            .iter()
            .filter(|(_, &l)| l == label)
            .map(|(&s, _)| s)
            .collect();
        let m = minkowski_functionals(&blocks, &sites, &domain);
        println!(
            "{label:>8} {:>6} {:>10.2} {:>10.2} {:>8.2} {:>7.1} {:>9.3} {:>8.3} {:>8.3}",
            summary.cells,
            m.v0_volume,
            m.v1_area,
            m.v2_curvature,
            m.genus,
            m.thickness,
            m.breadth,
            m.length
        );
    }
}
