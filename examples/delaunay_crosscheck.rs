//! Cross-validate the two independent Voronoi constructions: the
//! half-space-clipping cells of `tess` against the Delaunay dual of the
//! `delaunay` crate — two algorithms, one answer. Also demonstrates the
//! Delaunay output mode (the paper's successor library emits both).
//!
//! ```sh
//! cargo run --release --example delaunay_crosscheck
//! ```

use meshing_universe::delaunay::{voronoi_dual, Delaunay};
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::tess::{self, TessParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let n = 400;
    let box_len = 8.0;
    let particles: Vec<(u64, Vec3)> = (0..n)
        .map(|id| {
            (
                id,
                Vec3::new(
                    rng.gen_range(0.0..box_len),
                    rng.gen_range(0.0..box_len),
                    rng.gen_range(0.0..box_len),
                ),
            )
        })
        .collect();

    // Clip-based cells in a periodic box.
    let (block, _) = tess::tessellate_serial(
        &particles,
        Aabb::cube(box_len),
        [true; 3],
        &TessParams::default(),
    );

    // Delaunay of the same points in a NON-periodic sense: mirror ghosts by
    // hand so interior cells see the same neighborhood.
    let mut padded: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
    for &(_, p) in &particles {
        for dx in [-1i32, 0, 1] {
            for dy in [-1i32, 0, 1] {
                for dz in [-1i32, 0, 1] {
                    if (dx, dy, dz) == (0, 0, 0) {
                        continue;
                    }
                    let q = p + Vec3::new(
                        dx as f64 * box_len,
                        dy as f64 * box_len,
                        dz as f64 * box_len,
                    );
                    // keep a 3 Mpc shell of images
                    if Aabb::cube(box_len).grown(3.0).contains_closed(q) {
                        padded.push(q);
                    }
                }
            }
        }
    }
    println!(
        "triangulating {} points ({} images)…",
        padded.len(),
        padded.len() - n as usize
    );
    let dt = Delaunay::new(&padded).expect("triangulation");
    println!("{} tetrahedra", dt.tetrahedra().len());

    let mut compared = 0;
    let mut max_rel = 0.0f64;
    let interior = Aabb::cube(box_len).grown(1.0);
    for cell in &block.cells {
        let site_id = block.site_id_of(cell);
        let Some(dual) = voronoi_dual::voronoi_cell(&dt, site_id as u32) else {
            continue;
        };
        // Skip cells whose dual vertices approach the mirror shell: their
        // Delaunay neighborhoods may be truncated by the finite padding.
        if !dual.vertices.iter().all(|v| interior.contains_closed(*v)) {
            continue;
        }
        let Some(dual_vol) = dual.volume() else {
            continue;
        };
        let rel = (dual_vol - cell.volume).abs() / cell.volume;
        max_rel = max_rel.max(rel);
        compared += 1;
    }
    println!("compared {compared} cells: max relative volume difference {max_rel:.2e}");
    assert!(max_rel < 1e-6, "the two constructions disagree!");
    println!("ok — clip-based cells match the Delaunay dual");
}
