//! Quickstart: tessellate a small point set, inspect cells, save and load.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::collections::BTreeMap;

use meshing_universe::diy::comm::Runtime;
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::tess::{self, TessParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. Some points in a periodic 10³ box.
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let particles: Vec<(u64, Vec3)> = (0..500)
        .map(|id| {
            (
                id,
                Vec3::new(
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..10.0),
                ),
            )
        })
        .collect();
    let domain = Aabb::cube(10.0);

    // 2. Standalone (serial) tessellation with an automatic ghost size.
    let (block, stats) =
        tess::tessellate_serial(&particles, domain, [true; 3], &TessParams::default());
    println!(
        "tessellated {} cells ({} could not be certified)",
        stats.cells, stats.incomplete
    );

    // 3. Inspect: volumes partition the box; faces know their neighbors.
    let total: f64 = block.cells.iter().map(|c| c.volume).sum();
    println!(
        "total cell volume {total:.3} (box volume {})",
        domain.volume()
    );
    let c0 = &block.cells[0];
    println!(
        "cell of particle {} has volume {:.3}, area {:.3}, {} faces, neighbors: {:?}",
        block.site_id_of(c0),
        c0.volume,
        c0.area,
        c0.faces.len(),
        c0.faces.iter().map(|f| f.neighbor).collect::<Vec<_>>()
    );

    // 4. Write the mesh to a single file and read it back — works the same
    // in parallel (see the in-situ example).
    let path = std::env::temp_dir().join("quickstart.tess");
    let block_for_write = block.clone();
    Runtime::run(1, move |world| {
        let blocks: BTreeMap<u64, tess::MeshBlock> =
            [(0u64, block_for_write.clone())].into_iter().collect();
        tess::io::write_tessellation(world, &path, &blocks).expect("write");
    });
    let back = tess::io::read_tessellation(&std::env::temp_dir().join("quickstart.tess")).unwrap();
    println!(
        "read back {} blocks, {} cells",
        back.len(),
        back[0].cells.len()
    );
    assert_eq!(back[0], block);
    println!("ok");
}
