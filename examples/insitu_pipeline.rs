//! The full in-situ pipeline of Figures 3/4: a distributed HACC-style
//! simulation with the cosmology-tools framework firing the tessellation,
//! halo finder, and statistics tools on a configured cadence, writing
//! results to parallel storage, then a postprocessing pass on the stored
//! mesh.
//!
//! ```sh
//! cargo run --release --example insitu_pipeline
//! ```

use meshing_universe::diy::comm::Runtime;
use meshing_universe::framework::{
    FofParams, FrameworkConfig, HaloFinderTool, InSituRunner, MultistreamTool, StatsTool, TessTool,
    VoidsTool,
};
use meshing_universe::hacc::{SimParams, Simulation};
use meshing_universe::postprocess::{label_components_serial, VolumeFilter};
use meshing_universe::tess;

fn main() {
    let out_dir = std::env::temp_dir().join("insitu-pipeline");
    std::fs::create_dir_all(&out_dir).unwrap();

    // The "cosmology tools configuration" of Figure 4.
    let config = FrameworkConfig::parse(&format!(
        "# in-situ tools\n\
         tool tess        every=10 last=true\n\
         tool stats       every=5\n\
         tool halos       last=true\n\
         tool voids       every=10\n\
         tool multistream last=true\n\
         output_dir {}\n",
        out_dir.display()
    ))
    .expect("valid config");

    let nranks = 4;
    let nsteps = 30;
    println!("running {nranks} ranks, {nsteps} steps, tools on schedule…");
    let reports = Runtime::run(nranks, |world| {
        let params = SimParams {
            np: 16,
            box_size: 16.0,
            ..SimParams::paper_like(16)
        };
        let mut sim = Simulation::init(world, params, 8);
        let mut runner = InSituRunner::new(config.clone());
        runner.register(Box::new(TessTool::new(
            tess::TessParams::default().with_ghost(4.0),
        )));
        runner.register(Box::new(StatsTool::new()));
        runner.register(Box::new(HaloFinderTool::new(FofParams {
            linking_length: 0.25,
            min_size: 8,
        })));
        runner.register(Box::new(VoidsTool::new(
            tess::TessParams::default().with_ghost(4.0),
            1.5,
        )));
        runner.register(Box::new(MultistreamTool::new(1.0)));
        runner.run(world, &mut sim, nsteps)
    });

    // Every rank saw the same schedule; print rank 0's log.
    println!("\n== in-situ tool log ==");
    for r in &reports[0] {
        println!("[{}] {}", r.tool, r.summary);
    }

    // Postprocessing: read the final stored tessellation, find voids.
    let final_mesh = out_dir.join(format!("tess_step{nsteps}.bin"));
    let blocks = tess::io::read_tessellation(&final_mesh).expect("stored mesh");
    let cells: usize = blocks.iter().map(|b| b.cells.len()).sum();
    println!(
        "\n== postprocessing {} ({} blocks, {cells} cells) ==",
        final_mesh.display(),
        blocks.len()
    );
    let filter = VolumeFilter::fraction_of_range(&blocks, 0.1);
    let comps = label_components_serial(&blocks, filter.min);
    println!(
        "threshold {:.3}: {} void components; largest has {} cells",
        filter.min,
        comps.num_components(),
        comps.by_volume().first().map(|(_, s)| s.cells).unwrap_or(0)
    );
}
