//! Invariants of the `diy::metrics` observability layer, exercised on the
//! Figure 5 pipeline (ghost exchange → Voronoi → parallel write) at 1, 2,
//! 4, and 8 ranks:
//!
//! * **Conservation** — per tag, global messages/bytes sent equal
//!   messages/bytes received; nothing is dropped or double-counted.
//! * **Tiling** — the `ghost_exchange` + `voronoi` + `output` spans account
//!   for the enclosing pipeline span's CPU time to within 5%.
//! * **Determinism** — two identical runs at the same rank count produce
//!   equal reports (modulo the inherently noisy CPU fields, which
//!   [`RunReport::normalized`] zeroes), and every rank sees the same
//!   merged report.

use std::collections::BTreeMap;

use meshing_universe::diy::codec::Encode;
use meshing_universe::diy::comm::Runtime;
use meshing_universe::diy::decomposition::{Assignment, Decomposition};
use meshing_universe::diy::metrics::{collect_report, RunReport};
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::hacc;
use meshing_universe::tess::{self, TessParams, PHASE_GHOST_EXCHANGE, PHASE_OUTPUT, PHASE_VORONOI};

/// Evolve a small clustered box serially (same recipe as the Fig. 5
/// pipeline test) so every run starts from identical particles.
fn evolved(np: usize, nsteps: usize) -> Vec<(u64, Vec3)> {
    let params = hacc::SimParams::paper_like(np);
    let cosmo = hacc::Cosmology::default();
    let ic = hacc::ic::zeldovich(
        &hacc::ic::IcParams {
            np,
            box_size: params.box_size,
            seed: 7,
            delta_rms: params.initial_delta_rms,
            spectrum: params.spectrum,
        },
        &cosmo,
        params.a_init,
    );
    let solver = hacc::PmSolver::new(np, cosmo);
    let (mut pos, mut mom) = (ic.positions, ic.momenta);
    for k in 0..nsteps {
        solver.step(&mut pos, &mut mom, params.a_at(k), params.da_at(k));
    }
    pos.into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p))
        .collect()
}

fn partition(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    asn: &Assignment,
    rank: usize,
) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
    let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> =
        asn.blocks_of_rank(rank).map(|g| (g, Vec::new())).collect();
    for &(id, p) in particles {
        let gid = dec.block_of_point(p);
        if let Some(v) = local.get_mut(&gid) {
            v.push((id, p));
        }
    }
    local
}

const PHASE_PIPELINE: &str = "pipeline";

/// One full Fig. 5 pipeline run: returns the merged report every rank
/// agreed on. The tessellation + write are wrapped in an enclosing
/// `pipeline` span so the tiling invariant can be checked.
fn run_pipeline(
    particles: &[(u64, Vec3)],
    np: usize,
    nranks: usize,
    out: &std::path::Path,
) -> RunReport {
    let domain = Aabb::cube(np as f64);
    let nblocks = nranks.max(2); // ≥ 2 blocks so exchange always has work
    let dec = Decomposition::regular(domain, nblocks, [true; 3]);
    let params = TessParams::default().with_ghost(3.0);
    let reports = Runtime::run(nranks, |world| {
        let asn = Assignment::new(nblocks, world.nranks());
        let local = partition(particles, &dec, &asn, world.rank());
        {
            let _span = world.metrics().phase(PHASE_PIPELINE);
            let r = tess::tessellate(world, &dec, &asn, &local, &params);
            tess::io::write_tessellation(world, out, &r.blocks).expect("write");
        }
        collect_report(world)
    });
    // every rank must hold the identical merged report (CPU fields included:
    // the merge is a deterministic reduction over the same snapshots)
    for other in &reports[1..] {
        assert_eq!(other, &reports[0], "ranks disagree on the merged report");
    }
    reports.into_iter().next().unwrap()
}

#[test]
fn pipeline_metrics_are_conserved_and_tile_the_run() {
    let np = 8;
    let particles = evolved(np, 10);
    let dir = std::env::temp_dir().join("mu-metrics-invariants");
    std::fs::create_dir_all(&dir).unwrap();

    for nranks in [1usize, 2, 4, 8] {
        let out = dir.join(format!("conserve_r{nranks}.tess"));
        let report = run_pipeline(&particles, np, nranks, &out);
        assert_eq!(report.nranks, nranks as u64);

        // conservation: per tag, sent == received for messages and bytes
        assert!(
            report.is_conserved(),
            "nranks={nranks}: {:?}",
            report.conservation_violations()
        );
        let (ms, bs, mr, br) = report.traffic_totals();
        assert_eq!(ms, mr, "nranks={nranks}: global message counts");
        assert_eq!(bs, br, "nranks={nranks}: global byte counts");
        // the pipeline always communicates (all_to_all self-delivery at 1 rank)
        assert!(ms > 0, "nranks={nranks}: expected traffic");

        // every pipeline phase ran and was attributed CPU time
        let parent = report.phase(PHASE_PIPELINE).expect("pipeline span");
        let children: f64 = [PHASE_GHOST_EXCHANGE, PHASE_VORONOI, PHASE_OUTPUT]
            .iter()
            .map(|p| {
                let ph = report
                    .phase(p)
                    .unwrap_or_else(|| panic!("missing phase {p}"));
                assert!(ph.cpu_sum_s >= 0.0);
                ph.cpu_sum_s
            })
            .sum();

        // tiling: spans are inclusive, so the children can never exceed the
        // parent, and the glue between them must stay below 5% (plus a small
        // absolute floor for clock granularity at this problem size)
        assert!(
            children <= parent.cpu_sum_s * (1.0 + 1e-6) + 1e-6,
            "nranks={nranks}: children {children} > parent {}",
            parent.cpu_sum_s
        );
        let gap = parent.cpu_sum_s - children;
        assert!(
            gap <= 0.05 * parent.cpu_sum_s + 0.005,
            "nranks={nranks}: unattributed {gap}s of {}s pipeline time",
            parent.cpu_sum_s
        );

        // imbalance is well-defined: critical path ≥ mean
        assert!(parent.imbalance(report.nranks) >= 1.0 - 1e-9);
    }
}

#[test]
fn pipeline_report_is_deterministic_across_runs() {
    let np = 8;
    let particles = evolved(np, 10);
    let dir = std::env::temp_dir().join("mu-metrics-invariants");
    std::fs::create_dir_all(&dir).unwrap();

    for nranks in [1usize, 2, 4, 8] {
        let out_a = dir.join(format!("det_a_r{nranks}.tess"));
        let out_b = dir.join(format!("det_b_r{nranks}.tess"));
        let a = run_pipeline(&particles, np, nranks, &out_a);
        let b = run_pipeline(&particles, np, nranks, &out_b);
        // counter portion (phases, tags, totals) is bit-identical run to run
        assert_eq!(
            a.normalized(),
            b.normalized(),
            "nranks={nranks}: reports differ between identical runs"
        );
        // and the serialized forms agree too
        assert_eq!(a.normalized().to_bytes(), b.normalized().to_bytes());
        assert_eq!(a.normalized().to_json(), b.normalized().to_json());
    }
}
