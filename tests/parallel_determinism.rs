//! Determinism of the threaded, incremental tessellation path.
//!
//! The intra-block kernel fans cells out over a work-stealing pool and the
//! adaptive driver resumes sessions instead of recomputing whole blocks,
//! but neither is allowed to change a single bit of the merged mesh:
//!
//! * **Thread invariance** — the merged mesh is bit-identical whether the
//!   pool runs 1, 2, or 8 ways (chunks are collected in index order).
//! * **Mode invariance** — incremental re-tessellation (recompute only
//!   uncertified cells each adaptive round) matches the full per-round
//!   recompute bit for bit at 1, 2, 4, and 8 ranks, for explicit and
//!   adaptive ghost modes.
//! * **Metrics invariants survive the pool** — per-tag transport
//!   conservation and span tiling still hold when pool workers burn CPU on
//!   behalf of a rank (their time is credited to the enclosing span).
//!
//! Pool width is process-global state, so every test serializes through
//! one mutex and restores the previous width on exit.

use std::collections::BTreeMap;
use std::sync::Mutex;

use meshing_universe::diy::comm::Runtime;
use meshing_universe::diy::decomposition::{Assignment, Decomposition};
use meshing_universe::diy::metrics::collect_report;
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::rayon::set_max_parallelism;
use meshing_universe::tess::{
    self, GhostSpec, TessParams, PHASE_GHOST_EXCHANGE, PHASE_OUTPUT, PHASE_VORONOI,
};

/// Serializes tests that reconfigure the global pool width.
static POOL_WIDTH: Mutex<()> = Mutex::new(());

/// Run `f` with the pool capped at `width`, restoring the previous cap.
fn with_pool_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    let _guard = POOL_WIDTH.lock().unwrap();
    let prev = set_max_parallelism(width);
    let out = f();
    set_max_parallelism(prev);
    out
}

fn jittered(n: usize, seed: u64, amp: f64) -> Vec<(u64, Vec3)> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n * n * n)
        .map(|idx| {
            let (i, j, k) = (idx % n, (idx / n) % n, idx / (n * n));
            let p = Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5)
                + Vec3::new(
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                );
            let ng = n as f64;
            (
                idx as u64,
                Vec3::new(p.x.rem_euclid(ng), p.y.rem_euclid(ng), p.z.rem_euclid(ng)),
            )
        })
        .collect()
}

fn partition(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    asn: &Assignment,
    rank: usize,
) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
    let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> =
        asn.blocks_of_rank(rank).map(|g| (g, Vec::new())).collect();
    for &(id, p) in particles {
        let gid = dec.block_of_point(p);
        if let Some(v) = local.get_mut(&gid) {
            v.push((id, p));
        }
    }
    local
}

/// Bit-level fingerprint of one cell: volume and area as raw f64 bits plus
/// the face-neighbor ids in face order.
type CellBits = (u64, u64, Vec<u64>);

/// Tessellate on `nranks` ranks and merge every cell keyed by site id.
fn mesh_bits(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    nranks: usize,
    params: &TessParams,
) -> BTreeMap<u64, CellBits> {
    let collected = Runtime::run(nranks, move |world| {
        let asn = Assignment::new(dec.nblocks(), world.nranks());
        let local = partition(particles, dec, &asn, world.rank());
        let r = tess::tessellate(world, dec, &asn, &local, params);
        r.blocks
            .values()
            .flat_map(|b| {
                b.cells
                    .iter()
                    .map(|c| {
                        (
                            b.site_id_of(c),
                            (
                                c.volume.to_bits(),
                                c.area.to_bits(),
                                c.faces.iter().map(|f| f.neighbor).collect::<Vec<u64>>(),
                            ),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    });
    let mut merged = BTreeMap::new();
    for (id, bits) in collected.into_iter().flatten() {
        let prev = merged.insert(id, bits);
        assert!(prev.is_none(), "cell {id} produced by two blocks");
    }
    merged
}

fn ghost_modes() -> [(&'static str, GhostSpec); 2] {
    [
        ("explicit", GhostSpec::Explicit(2.5)),
        ("adaptive", GhostSpec::adaptive()),
    ]
}

#[test]
fn merged_mesh_is_bit_identical_across_pool_widths() {
    let n = 6;
    let particles = jittered(n, 17, 0.45);
    let dec = Decomposition::regular(Aabb::cube(n as f64), 8, [true; 3]);
    for (label, ghost) in ghost_modes() {
        let params = TessParams {
            ghost,
            ..TessParams::default()
        };
        let reference = with_pool_width(1, || mesh_bits(&particles, &dec, 2, &params));
        assert_eq!(reference.len(), n * n * n, "{label}: all cells certified");
        for width in [2usize, 8] {
            let mesh = with_pool_width(width, || mesh_bits(&particles, &dec, 2, &params));
            assert_eq!(
                mesh, reference,
                "{label}: pool width {width} changed the mesh"
            );
        }
    }
}

#[test]
fn incremental_retess_matches_full_recompute_at_every_rank_count() {
    let n = 6;
    let particles = jittered(n, 23, 0.48);
    let dec = Decomposition::regular(Aabb::cube(n as f64), 8, [true; 3]);
    // width 2 so the pool is actually in the loop while modes are compared
    with_pool_width(2, || {
        for (label, ghost) in ghost_modes() {
            let incremental = TessParams {
                ghost,
                incremental_retess: true,
                ..TessParams::default()
            };
            let full = TessParams {
                incremental_retess: false,
                ..incremental
            };
            let reference = mesh_bits(&particles, &dec, 1, &full);
            assert_eq!(reference.len(), n * n * n, "{label}: all cells certified");
            for nranks in [1usize, 2, 4, 8] {
                let inc = mesh_bits(&particles, &dec, nranks, &incremental);
                assert_eq!(
                    inc, reference,
                    "{label}: incremental mesh at {nranks} ranks differs from full"
                );
                let f = mesh_bits(&particles, &dec, nranks, &full);
                assert_eq!(
                    f, reference,
                    "{label}: full mesh at {nranks} ranks differs from 1 rank"
                );
            }
        }
    });
}

#[test]
fn adaptive_rounds_after_the_first_recompute_only_uncertified_cells() {
    let n = 6;
    let particles = jittered(n, 23, 0.48);
    let dec = Decomposition::regular(Aabb::cube(n as f64), 8, [true; 3]);
    // a small initial radius forces several growth rounds
    let ghost = GhostSpec::Adaptive {
        initial_factor: 0.75,
        max_rounds: 8,
    };
    let run = |incremental: bool| -> tess::TessStats {
        let particles = &particles;
        let dec = &dec;
        let stats = Runtime::run(4, move |world| {
            let asn = Assignment::new(8, world.nranks());
            let local = partition(particles, dec, &asn, world.rank());
            let params = TessParams {
                ghost,
                incremental_retess: incremental,
                ..TessParams::default()
            };
            let r = tess::tessellate(world, dec, &asn, &local, &params);
            tess::driver::global_stats(world, r.stats)
        });
        stats[0]
    };
    let inc = with_pool_width(2, || run(true));
    let full = with_pool_width(2, || run(false));
    assert!(inc.ghost_rounds >= 2, "rounds {}", inc.ghost_rounds);
    assert_eq!(inc.ghost_rounds, full.ghost_rounds);
    assert_eq!(inc.cells, full.cells);

    let sites = (n * n * n) as u64;
    // Round 1 computes every cell once; each later round may only touch
    // the cells the previous round could not certify — strictly fewer
    // than a full per-round recompute.
    assert_eq!(inc.cells_computed + inc.cells_reused, full.cells_computed);
    assert!(inc.cells_reused > 0, "no cells were reused");
    assert!(
        inc.cells_computed < full.cells_computed,
        "incremental ({}) must recompute fewer cells than full ({})",
        inc.cells_computed,
        full.cells_computed
    );
    assert!(inc.cells_computed >= sites);
    assert!(
        inc.candidates_tested < full.candidates_tested,
        "incremental ({}) must test fewer candidates than full ({})",
        inc.candidates_tested,
        full.candidates_tested
    );
}

#[test]
fn metrics_invariants_hold_with_the_pool_engaged() {
    let n = 6;
    let particles = jittered(n, 31, 0.45);
    let dec = Decomposition::regular(Aabb::cube(n as f64), 8, [true; 3]);
    let dir = std::env::temp_dir().join("mu-parallel-determinism");
    std::fs::create_dir_all(&dir).unwrap();

    with_pool_width(4, || {
        for nranks in [1usize, 2, 4] {
            let out = dir.join(format!("pool_r{nranks}.tess"));
            let particles = &particles;
            let dec = &dec;
            let out2 = out.clone();
            let reports = Runtime::run(nranks, move |world| {
                let asn = Assignment::new(8, world.nranks());
                let local = partition(particles, dec, &asn, world.rank());
                let params = TessParams {
                    ghost: GhostSpec::adaptive(),
                    ..TessParams::default()
                };
                {
                    let _span = world.metrics().phase("pipeline");
                    let r = tess::tessellate(world, dec, &asn, &local, &params);
                    tess::io::write_tessellation(world, &out2, &r.blocks).expect("write");
                }
                collect_report(world)
            });
            let report = &reports[0];
            assert!(
                report.is_conserved(),
                "nranks={nranks}: {:?}",
                report.conservation_violations()
            );

            // Span tiling: pool-worker CPU is credited to the enclosing
            // spans, so the voronoi span (and its pipeline parent) still
            // account for the work and children never exceed the parent.
            let parent = report.phase("pipeline").expect("pipeline span");
            let children: f64 = [PHASE_GHOST_EXCHANGE, PHASE_VORONOI, PHASE_OUTPUT]
                .iter()
                .map(|p| report.phase(p).map_or(0.0, |ph| ph.cpu_sum_s))
                .sum();
            assert!(
                children <= parent.cpu_sum_s * (1.0 + 1e-6) + 1e-6,
                "nranks={nranks}: children {children} > parent {}",
                parent.cpu_sum_s
            );
            let gap = parent.cpu_sum_s - children;
            assert!(
                gap <= 0.05 * parent.cpu_sum_s + 0.005,
                "nranks={nranks}: unattributed {gap}s of {}s pipeline time",
                parent.cpu_sum_s
            );
        }
    });
}
