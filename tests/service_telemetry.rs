//! Live-telemetry invariants for the resident service:
//!
//! * the `service.*` instruments in the process-global registry move in
//!   step with the service's own counters (asserted with `>=` deltas —
//!   the registry is shared by every service in the process);
//! * the Prometheus exposition of a live service re-parses and carries
//!   the published epoch;
//! * with `TraceMode::Spans` on, every request's enqueue→reply life is
//!   recorded under its own tid (= request id) in the service flight
//!   recorder, and the merged export validates as Chrome-trace JSON.
//!
//! Telemetry and the trace mode are process-wide, so the tests serialize
//! on one mutex and restore the trace mode before releasing it.

use std::collections::BTreeMap;
use std::sync::Mutex;

use meshing_universe::diy::telemetry;
use meshing_universe::diy::trace::{
    chrome_trace_json, set_trace_mode, validate_chrome_trace, EventKind, TraceMode,
};
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::tess::{
    Answer, MeshService, Query, ServiceConfig, TessParams, Update, SERVICE_TRACE_PID,
};

static GLOBAL_STATE_LOCK: Mutex<()> = Mutex::new(());

fn jittered(n: usize, seed: u64) -> Vec<(u64, Vec3)> {
    use meshing_universe::rand::{Rng, SeedableRng};
    let mut rng = meshing_universe::rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n * n * n)
        .map(|idx| {
            let (i, j, k) = (idx % n, (idx / n) % n, idx / (n * n));
            let p = Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5);
            let q = p + Vec3::new(
                rng.gen_range(-0.4..0.4),
                rng.gen_range(-0.4..0.4),
                rng.gen_range(-0.4..0.4),
            );
            let ng = n as f64;
            (
                idx as u64,
                Vec3::new(q.x.rem_euclid(ng), q.y.rem_euclid(ng), q.z.rem_euclid(ng)),
            )
        })
        .collect()
}

fn spawn(n: usize, seed: u64) -> MeshService {
    let particles = jittered(n, seed);
    MeshService::spawn(
        Aabb::cube(n as f64),
        [true; 3],
        &particles,
        ServiceConfig::new(2, 4)
            .with_workers(2)
            .with_params(TessParams::default().with_adaptive_ghost()),
    )
}

#[test]
fn registry_tracks_service_counters_and_gauges() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let answered_before = telemetry::counter("service.answered", &[]).get();
    let enqueued_before = telemetry::counter("service.enqueued", &[]).get();
    let epochs_before = telemetry::counter("service.epochs_published", &[]).get();
    let point_hist_before = telemetry::histogram("service.latency_ns", &[("kind", "point")])
        .read()
        .total()
        .n();

    let svc = spawn(5, 3);
    let n_queries = 12u64;
    for i in 0..n_queries {
        let p = Vec3::new(0.3 + (i as f64) * 0.35, 2.0, 2.0);
        let r = svc.query(Query::Point(p)).expect("service open");
        assert!(matches!(r.answer, Answer::Point(Some(_))));
    }
    svc.update(Update::Delta {
        upserts: vec![(0, Vec3::new(2.5, 2.5, 2.5))],
        removes: Vec::new(),
    });

    // Counters only ever move up, by at least this service's activity.
    let answered = telemetry::counter("service.answered", &[]).get();
    let enqueued = telemetry::counter("service.enqueued", &[]).get();
    assert!(
        answered >= answered_before + n_queries,
        "answered: {answered}"
    );
    assert!(
        enqueued >= enqueued_before + n_queries,
        "enqueued: {enqueued}"
    );
    assert!(telemetry::counter("service.epochs_published", &[]).get() >= epochs_before + 2);
    let point_hist = telemetry::histogram("service.latency_ns", &[("kind", "point")]).read();
    assert!(point_hist.total().n() >= point_hist_before + n_queries);
    assert!(point_hist.rolling().quantile(0.99) > 0.0);

    // Gauges reflect the most recent publish — ours, under the lock.
    assert_eq!(telemetry::gauge("service.epoch", &[]).get(), 2.0);
    assert_eq!(
        telemetry::gauge("service.particles", &[]).get(),
        125.0,
        "particle gauge"
    );
    assert!(telemetry::gauge("service.cells", &[]).get() > 0.0);
    assert!(telemetry::gauge("service.rank_imbalance", &[]).get() >= 1.0);
    let rate = telemetry::gauge("service.coalesce_rate", &[]).get();
    assert!((0.0..=1.0).contains(&rate), "coalesce rate {rate}");

    // The exposition of the live registry re-parses and carries the epoch.
    let samples =
        telemetry::parse_exposition(&telemetry::render_prometheus()).expect("exposition re-parses");
    let epoch = samples
        .iter()
        .find(|s| s.name == "service_epoch")
        .expect("service_epoch series");
    assert_eq!(epoch.value, 2.0);

    svc.shutdown();
}

#[test]
fn requests_trace_as_one_track_each() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = set_trace_mode(TraceMode::Spans);

    let svc = spawn(4, 9);
    let mut expected: BTreeMap<u64, &'static str> = BTreeMap::new();
    let r = svc
        .query(Query::Point(Vec3::new(2.0, 2.0, 2.0)))
        .expect("open");
    expected.insert(r.id, "query:point");
    let r = svc
        .query(Query::BoxCells(Aabb::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(2.0, 2.0, 2.0),
        )))
        .expect("open");
    expected.insert(r.id, "query:box");
    let r = svc.query(Query::Region(Aabb::cube(4.0))).expect("open");
    expected.insert(r.id, "query:region");

    let snap = svc.trace_snapshot();
    assert_eq!(snap.rank, SERVICE_TRACE_PID);
    assert_eq!(snap.dropped, 0, "recorder overflowed");

    // Every request's life is one tid: Begin and End carry the span name,
    // and the batch mark sits between them on the same track.
    for (&id, &name) in &expected {
        let tid = id as u32;
        let track: Vec<_> = snap.events.iter().filter(|e| e.tid == tid).collect();
        let begins: Vec<_> = track
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin)
            .collect();
        let ends: Vec<_> = track
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd)
            .collect();
        assert_eq!(begins.len(), 1, "request {id}: one Begin");
        assert_eq!(ends.len(), 1, "request {id}: one End");
        assert_eq!(snap.name(begins[0].name), name);
        assert_eq!(snap.name(ends[0].name), name);
        assert!(begins[0].t_ns <= ends[0].t_ns, "request {id}: time order");
        assert!(ends[0].b > 0, "request {id}: End carries the latency");
        assert!(
            track
                .iter()
                .any(|e| e.kind == EventKind::Mark && snap.name(e.name) == "batch"),
            "request {id}: batch mark missing"
        );
    }

    // The merged export is well-formed Chrome-trace JSON with at least
    // one record per request.
    let json = chrome_trace_json(&[snap]);
    let n = validate_chrome_trace(&json).expect("chrome trace validates");
    assert!(
        n >= expected.len(),
        "{n} records for {} requests",
        expected.len()
    );

    set_trace_mode(prev);
    svc.shutdown();
}

#[test]
fn tracing_off_records_nothing() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = set_trace_mode(TraceMode::Off);
    let svc = spawn(4, 17);
    svc.query(Query::Point(Vec3::new(1.0, 1.0, 1.0)))
        .expect("open");
    let snap = svc.trace_snapshot();
    assert!(
        snap.events.is_empty(),
        "flight recorder must stay empty with tracing off"
    );
    set_trace_mode(prev);
    svc.shutdown();
}
