//! Integration test of the void-finding pipeline (Figures 7 and 9):
//! threshold → connected components → Minkowski functionals, with the
//! distributed component labeling checked against the serial union-find.

use std::collections::{BTreeMap, HashSet};

use meshing_universe::diy::comm::Runtime;
use meshing_universe::diy::decomposition::{Assignment, Decomposition};
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::postprocess::components::label_components_parallel;
use meshing_universe::postprocess::{label_components_serial, minkowski_functionals, VolumeFilter};
use meshing_universe::tess::{self, TessParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Clustered particles: dense clumps + sparse background → clear voids.
fn clumpy_particles(seed: u64) -> (Vec<(u64, Vec3)>, Aabb) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let box_len = 12.0;
    let mut particles = Vec::new();
    let mut id = 0u64;
    // clumps
    for _ in 0..8 {
        let center = Vec3::new(
            rng.gen_range(1.0..11.0),
            rng.gen_range(1.0..11.0),
            rng.gen_range(1.0..11.0),
        );
        for _ in 0..60 {
            let p = center
                + Vec3::new(
                    rng.gen_range(-0.5..0.5),
                    rng.gen_range(-0.5..0.5),
                    rng.gen_range(-0.5..0.5),
                );
            particles.push((id, Aabb::cube(box_len).wrap(p)));
            id += 1;
        }
    }
    // sparse background
    for _ in 0..120 {
        particles.push((
            id,
            Vec3::new(
                rng.gen_range(0.0..box_len),
                rng.gen_range(0.0..box_len),
                rng.gen_range(0.0..box_len),
            ),
        ));
        id += 1;
    }
    (particles, Aabb::cube(box_len))
}

fn tessellate_all(particles: &[(u64, Vec3)], domain: Aabb) -> Vec<tess::MeshBlock> {
    let (block, _) = tess::tessellate_serial(
        particles,
        domain,
        [true; 3],
        &TessParams::default().with_ghost(6.0),
    );
    vec![block]
}

#[test]
fn thresholding_reveals_voids_with_sane_minkowski_values() {
    let (particles, domain) = clumpy_particles(3);
    let blocks = tessellate_all(&particles, domain);

    // no threshold → fully connected
    let all = label_components_serial(&blocks, 0.0);
    assert_eq!(all.num_components(), 1);

    // 10%-of-range threshold → a handful of components
    let filter = VolumeFilter::fraction_of_range(&blocks, 0.1);
    let comps = label_components_serial(&blocks, filter.min);
    assert!(comps.num_components() >= 1);
    let kept: u64 = comps.summaries.values().map(|s| s.cells).sum();
    assert!(kept > 0 && kept < particles.len() as u64);

    for (label, summary) in comps.by_volume().into_iter().take(5) {
        let sites: HashSet<u64> = comps
            .labels
            .iter()
            .filter(|(_, &l)| l == label)
            .map(|(&s, _)| s)
            .collect();
        let m = minkowski_functionals(&blocks, &sites, &domain);
        // V0 equals the component's summed cell volume
        assert!((m.v0_volume - summary.volume).abs() < 1e-9 * summary.volume.max(1.0));
        assert!(m.v0_volume <= domain.volume());
        assert!(m.v1_area > 0.0);
        // isoperimetric inequality S³ ≥ 36π V² — valid only for bodies
        // that do not wrap around the periodic torus, so restrict it to
        // components much smaller than the box
        if m.v0_volume < 0.2 * domain.volume() {
            assert!(
                m.v1_area.powi(3) >= 36.0 * std::f64::consts::PI * m.v0_volume.powi(2) * 0.999,
                "S={} V={}",
                m.v1_area,
                m.v0_volume
            );
        }
        assert_eq!(m.unmatched_edges, 0, "watertight component boundary");
        // Euler characteristic of closed orientable surfaces is even
        assert_eq!(m.v3_euler % 2, 0);
    }
}

#[test]
fn parallel_component_labeling_matches_serial() {
    let (particles, domain) = clumpy_particles(11);
    let blocks_serial = tessellate_all(&particles, domain);
    let filter = VolumeFilter::fraction_of_range(&blocks_serial, 0.08);
    let serial = label_components_serial(&blocks_serial, filter.min);

    for nranks in [1usize, 2, 4] {
        let dec = Decomposition::regular(domain, 8, [true; 3]);
        let particles_ref = &particles;
        let dec_ref = &dec;
        let min_volume = filter.min;
        let results = Runtime::run(nranks, move |world| {
            let asn = Assignment::new(8, world.nranks());
            let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
                .blocks_of_rank(world.rank())
                .map(|g| (g, Vec::new()))
                .collect();
            for &(id, p) in particles_ref {
                let gid = dec_ref.block_of_point(p);
                if let Some(v) = local.get_mut(&gid) {
                    v.push((id, p));
                }
            }
            let r = tess::tessellate(
                world,
                dec_ref,
                &asn,
                &local,
                &TessParams::default().with_ghost(6.0),
            );
            let comps = label_components_parallel(world, dec_ref, &asn, &r.blocks, min_volume);
            (comps.labels, comps.summaries)
        });

        // summaries identical on every rank and equal to serial
        for (labels, summaries) in &results {
            assert_eq!(summaries.len(), serial.summaries.len(), "nranks={nranks}");
            for (label, s) in summaries {
                let ss = serial.summaries[label];
                assert_eq!(s.cells, ss.cells, "component {label}");
                assert!((s.volume - ss.volume).abs() < 1e-9 * ss.volume.max(1.0));
            }
            // local labels agree with serial labels
            for (site, label) in labels {
                assert_eq!(serial.labels[site], *label, "site {site}");
            }
        }
    }
}
