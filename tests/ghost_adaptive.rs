//! Cross-rank invariants of the ghost exchange, fixed and adaptive.
//!
//! The merged tessellation must not depend on how blocks are spread over
//! ranks: ghosts arrive in canonical order (`tess::ghost::sort_ghosts`)
//! and the adaptive round loop takes every decision from collective data,
//! so cells, volumes, areas, and face neighbors are *bit-identical* at 1,
//! 2, 4, and 8 ranks. The adaptive mode must also certify every cell
//! starting from half the auto-heuristic radius while shipping fewer
//! ghost bytes than the one-shot heuristic.

use std::collections::BTreeMap;

use meshing_universe::diy::comm::Runtime;
use meshing_universe::diy::decomposition::{Assignment, DecompScheme, Decomposition};
use meshing_universe::diy::metrics::collect_report;
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::tess::ghost::is_ghost_tag;
use meshing_universe::tess::{self, GhostSpec, TessParams};

fn jittered(n: usize, seed: u64, amp: f64) -> Vec<(u64, Vec3)> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n * n * n)
        .map(|idx| {
            let (i, j, k) = (idx % n, (idx / n) % n, idx / (n * n));
            let p = Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5)
                + Vec3::new(
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                );
            let ng = n as f64;
            (
                idx as u64,
                Vec3::new(p.x.rem_euclid(ng), p.y.rem_euclid(ng), p.z.rem_euclid(ng)),
            )
        })
        .collect()
}

/// Build the decomposition under the `TESS_DECOMP` scheme (regular unless
/// the CI kd pass overrides it) so every invariant here is exercised on
/// both block geometries.
fn decomp(domain: Aabb, particles: &[(u64, Vec3)]) -> Decomposition {
    let positions: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
    DecompScheme::from_env().build(domain, 8, [true; 3], &positions)
}

fn partition(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    asn: &Assignment,
    rank: usize,
) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
    let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> =
        asn.blocks_of_rank(rank).map(|g| (g, Vec::new())).collect();
    for &(id, p) in particles {
        let gid = dec.block_of_point(p);
        if let Some(v) = local.get_mut(&gid) {
            v.push((id, p));
        }
    }
    local
}

/// Bit-level fingerprint of one cell: volume and area as raw f64 bits plus
/// the face-neighbor ids in face order.
type CellBits = (u64, u64, Vec<u64>);

/// Tessellate on `nranks` ranks and merge every cell keyed by site id.
fn mesh_bits(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    nranks: usize,
    params: &TessParams,
) -> BTreeMap<u64, CellBits> {
    let collected = Runtime::run(nranks, move |world| {
        let asn = Assignment::new(dec.nblocks(), world.nranks());
        let local = partition(particles, dec, &asn, world.rank());
        let r = tess::tessellate(world, dec, &asn, &local, params);
        r.blocks
            .values()
            .flat_map(|b| {
                b.cells
                    .iter()
                    .map(|c| {
                        (
                            b.site_id_of(c),
                            (
                                c.volume.to_bits(),
                                c.area.to_bits(),
                                c.faces.iter().map(|f| f.neighbor).collect::<Vec<u64>>(),
                            ),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    });
    let mut merged = BTreeMap::new();
    for (id, bits) in collected.into_iter().flatten() {
        let prev = merged.insert(id, bits);
        assert!(prev.is_none(), "cell {id} produced by two blocks");
    }
    merged
}

#[test]
fn merged_mesh_is_bit_identical_across_rank_counts() {
    let n = 6;
    let particles = jittered(n, 11, 0.45);
    let domain = Aabb::cube(n as f64);
    let dec = decomp(domain, &particles);
    let modes: [(&str, GhostSpec); 2] = [
        ("explicit", GhostSpec::Explicit(2.5)),
        ("adaptive", GhostSpec::adaptive()),
    ];
    for (label, ghost) in modes {
        let params = TessParams {
            ghost,
            ..TessParams::default()
        };
        let reference = mesh_bits(&particles, &dec, 1, &params);
        assert_eq!(
            reference.len(),
            n * n * n,
            "{label}: every cell certified at 1 rank"
        );
        for nranks in [2usize, 4, 8] {
            let mesh = mesh_bits(&particles, &dec, nranks, &params);
            assert_eq!(
                mesh, reference,
                "{label}: mesh at {nranks} ranks differs from 1 rank"
            );
        }
    }
}

#[test]
fn adaptive_certifies_all_cells_from_half_auto_radius() {
    let n = 6;
    let particles = jittered(n, 29, 0.49);
    let domain = Aabb::cube(n as f64);
    let dec = decomp(domain, &particles);

    let run = |ghost: GhostSpec| {
        let particles = &particles;
        let dec = &dec;
        Runtime::run(4, move |world| {
            let asn = Assignment::new(8, world.nranks());
            let local = partition(particles, dec, &asn, world.rank());
            let params = TessParams {
                ghost,
                ..TessParams::default()
            };
            let r = tess::tessellate(world, dec, &asn, &local, &params);
            let volume: f64 = r
                .blocks
                .values()
                .flat_map(|b| b.cells.iter().map(|c| c.volume))
                .sum();
            let total_volume = world.all_reduce(volume, |a, b| a + b);
            let report = collect_report(world);
            let (_, ghost_bytes) = report.tag_traffic_where(is_ghost_tag);
            (r.stats, total_volume, ghost_bytes)
        })
    };

    // GhostSpec::adaptive() starts at half the auto-heuristic radius.
    let adaptive = run(GhostSpec::adaptive());
    for (rank, (stats, _, _)) in adaptive.iter().enumerate() {
        assert_eq!(stats.incomplete, 0, "rank {rank} left cells uncertified");
    }
    let auto = run(GhostSpec::default());

    let cells = |rows: &[(tess::TessStats, f64, u64)]| -> u64 {
        rows.iter().map(|(s, _, _)| s.cells).sum()
    };
    assert_eq!(cells(&adaptive), cells(&auto), "same mesh size");
    assert_eq!(cells(&adaptive), (n * n * n) as u64);
    let (vol_ad, vol_auto) = (adaptive[0].1, auto[0].1);
    assert!(
        (vol_ad - vol_auto).abs() < 1e-9 * vol_auto,
        "volumes {vol_ad} vs {vol_auto}"
    );
    // the whole point: fewer ghost bytes than the one-shot heuristic
    let (bytes_ad, bytes_auto) = (adaptive[0].2, auto[0].2);
    assert!(
        bytes_ad < bytes_auto,
        "adaptive {bytes_ad} bytes vs auto {bytes_auto}"
    );
    assert!(adaptive[0].0.ghost_rounds >= 1);
}
