//! Cross-validation: the clip-based Voronoi cells (tess) against the
//! Delaunay dual (delaunay crate) — two independent algorithms must agree
//! on volumes, areas, and neighbor sets.

use meshing_universe::delaunay::{voronoi_dual, Delaunay};
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::tess::{self, TessParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_points(n: usize, box_len: f64, seed: u64) -> Vec<(u64, Vec3)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n as u64)
        .map(|id| {
            (
                id,
                Vec3::new(
                    rng.gen_range(0.0..box_len),
                    rng.gen_range(0.0..box_len),
                    rng.gen_range(0.0..box_len),
                ),
            )
        })
        .collect()
}

/// Pad a periodic point set with mirror images so a plain (non-periodic)
/// Delaunay sees the same neighborhoods as the periodic tessellation.
fn padded(particles: &[(u64, Vec3)], box_len: f64, shell: f64) -> (Vec<Vec3>, Vec<u64>) {
    let mut out: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
    let mut ids: Vec<u64> = particles.iter().map(|&(id, _)| id).collect();
    let halo = Aabb::cube(box_len).grown(shell);
    for &(id, p) in particles {
        for dx in [-1i32, 0, 1] {
            for dy in [-1i32, 0, 1] {
                for dz in [-1i32, 0, 1] {
                    if (dx, dy, dz) == (0, 0, 0) {
                        continue;
                    }
                    let q = p + Vec3::new(
                        dx as f64 * box_len,
                        dy as f64 * box_len,
                        dz as f64 * box_len,
                    );
                    if halo.contains_closed(q) {
                        out.push(q);
                        ids.push(id);
                    }
                }
            }
        }
    }
    (out, ids)
}

#[test]
fn clip_cells_match_delaunay_dual_volumes() {
    let box_len = 6.0;
    let particles = random_points(200, box_len, 42);
    let (block, stats) = tess::tessellate_serial(
        &particles,
        Aabb::cube(box_len),
        [true; 3],
        &TessParams::default(),
    );
    assert_eq!(stats.cells, 200, "auto ghost certifies all cells");

    let (pad_pts, _) = padded(&particles, box_len, 3.0);
    let dt = Delaunay::new(&pad_pts).unwrap();
    let mut compared = 0;
    for cell in &block.cells {
        let id = block.site_id_of(cell) as u32;
        let Some(dual) = voronoi_dual::voronoi_cell(&dt, id) else {
            continue;
        };
        let Some(vol) = dual.volume() else { continue };
        assert!(
            (vol - cell.volume).abs() < 1e-7 * cell.volume.max(1e-3),
            "site {id}: clip {} vs dual {vol}",
            cell.volume
        );
        if let Some(area) = dual.surface_area() {
            assert!(
                (area - cell.area).abs() < 1e-6 * cell.area.max(1e-3),
                "site {id}: clip area {} vs dual {area}",
                cell.area
            );
        }
        compared += 1;
    }
    assert!(compared > 150, "compared only {compared} cells");
}

#[test]
fn clip_cell_neighbors_match_delaunay_edges() {
    let box_len = 6.0;
    let particles = random_points(120, box_len, 43);
    let (block, _) = tess::tessellate_serial(
        &particles,
        Aabb::cube(box_len),
        [true; 3],
        &TessParams::default(),
    );

    let (pad_pts, pad_ids) = padded(&particles, box_len, 3.0);
    let dt = Delaunay::new(&pad_pts).unwrap();

    let mut checked = 0;
    for cell in &block.cells {
        let id = block.site_id_of(cell) as u32;
        // Delaunay neighbors of the original vertex, folding mirror images
        // back to their original ids.
        let dn: std::collections::BTreeSet<u64> = dt
            .neighbors_of(id)
            .into_iter()
            .map(|v| pad_ids[v as usize])
            .collect();
        // tess faces give neighbor site ids directly (ghost images of site
        // q carry q's global id already)
        let tn: std::collections::BTreeSet<u64> = cell
            .faces
            .iter()
            .filter(|f| f.neighbor != tess::NO_NEIGHBOR)
            .map(|f| f.neighbor)
            .collect();
        // Every tess face neighbor must be a Delaunay neighbor. (Delaunay
        // may report extra neighbors whose dual faces are degenerate or
        // that belong to image points outside the hull region, so we check
        // the inclusion that is geometrically guaranteed.)
        for t in &tn {
            assert!(
                dn.contains(t),
                "site {id}: tess neighbor {t} missing from Delaunay set {dn:?}"
            );
        }
        checked += 1;
    }
    assert_eq!(checked, block.cells.len());
}
