//! Integration test of the Figure 5 pipeline: ghost exchange → local cells
//! → dedup/cull → parallel write, validated against the standalone path
//! and across rank counts.

use std::collections::BTreeMap;

use meshing_universe::diy::comm::Runtime;
use meshing_universe::diy::decomposition::{Assignment, Decomposition};
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::hacc;
use meshing_universe::tess::{self, TessParams};

fn evolved(np: usize, nsteps: usize) -> Vec<(u64, Vec3)> {
    let params = hacc::SimParams::paper_like(np);
    let cosmo = hacc::Cosmology::default();
    let ic = hacc::ic::zeldovich(
        &hacc::ic::IcParams {
            np,
            box_size: params.box_size,
            seed: 7,
            delta_rms: params.initial_delta_rms,
            spectrum: params.spectrum,
        },
        &cosmo,
        params.a_init,
    );
    let solver = hacc::PmSolver::new(np, cosmo);
    let (mut pos, mut mom) = (ic.positions, ic.momenta);
    for k in 0..nsteps {
        solver.step(&mut pos, &mut mom, params.a_at(k), params.da_at(k));
    }
    pos.into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p))
        .collect()
}

fn partition(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    asn: &Assignment,
    rank: usize,
) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
    let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> =
        asn.blocks_of_rank(rank).map(|g| (g, Vec::new())).collect();
    for &(id, p) in particles {
        let gid = dec.block_of_point(p);
        if let Some(v) = local.get_mut(&gid) {
            v.push((id, p));
        }
    }
    local
}

/// The tessellation of evolved (clustered!) particles must be identical
/// regardless of block count and rank count, and identical to serial.
#[test]
fn evolved_box_parallel_equals_serial_across_rank_counts() {
    let np = 12usize.next_power_of_two() / 2; // 8³ = 512 particles
    let particles = evolved(np, 30);
    let domain = Aabb::cube(np as f64);
    let params = TessParams::default().with_ghost(4.0);

    let (serial_block, serial_stats) =
        tess::tessellate_serial(&particles, domain, [true; 3], &params);
    assert_eq!(
        serial_stats.cells + serial_stats.incomplete,
        (np * np * np) as u64
    );
    let serial: BTreeMap<u64, (f64, f64)> = serial_block
        .cells
        .iter()
        .map(|c| (serial_block.site_id_of(c), (c.volume, c.area)))
        .collect();
    // clustered data should still certify nearly everything at ghost 4
    assert!(serial.len() as f64 > 0.95 * (np * np * np) as f64);

    for (nblocks, nranks) in [(4usize, 2usize), (8, 4), (8, 8)] {
        let dec = Decomposition::regular(domain, nblocks, [true; 3]);
        let particles_ref = &particles;
        let serial_ref = &serial;
        let dec_ref = &dec;
        let params_ref = &params;
        let counted = Runtime::run(nranks, move |world| {
            let asn = Assignment::new(nblocks, world.nranks());
            let local = partition(particles_ref, dec_ref, &asn, world.rank());
            let r = tess::tessellate(world, dec_ref, &asn, &local, params_ref);
            let mut matched = 0u64;
            let mut total = 0u64;
            for b in r.blocks.values() {
                for c in &b.cells {
                    total += 1;
                    let id = b.site_id_of(c);
                    let (sv, sa) = serial_ref[&id];
                    assert!(
                        (c.volume - sv).abs() < 1e-9 * sv.max(1.0),
                        "cell {id} volume {} vs serial {sv}",
                        c.volume
                    );
                    assert!((c.area - sa).abs() < 1e-9 * sa.max(1.0));
                    matched += 1;
                }
            }
            (
                world.all_reduce(matched, |a, b| a + b),
                world.all_reduce(total, |a, b| a + b),
            )
        });
        let (matched, total) = counted[0];
        assert_eq!(matched, total);
        assert_eq!(
            total,
            serial.len() as u64,
            "nblocks={nblocks} nranks={nranks}"
        );
    }
}

/// Write in parallel, read serially and in parallel at another rank count,
/// and check the mesh content survives.
#[test]
fn tessellation_file_roundtrip_across_rank_counts() {
    let np = 8;
    let particles = evolved(np, 10);
    let domain = Aabb::cube(np as f64);
    let dir = std::env::temp_dir().join("mu-parallel-pipeline");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.tess");

    let dec = Decomposition::regular(domain, 8, [true; 3]);
    let particles_ref = &particles;
    let dec_ref = &dec;
    let path_ref = path.clone();
    Runtime::run(4, move |world| {
        let asn = Assignment::new(8, world.nranks());
        let local = partition(particles_ref, dec_ref, &asn, world.rank());
        let r = tess::tessellate(
            world,
            dec_ref,
            &asn,
            &local,
            &TessParams::default().with_ghost(3.0),
        );
        tess::io::write_tessellation(world, &path_ref, &r.blocks).unwrap();
    });

    let serial_read = tess::io::read_tessellation(&path).unwrap();
    assert_eq!(serial_read.len(), 8);
    let total_serial: usize = serial_read.iter().map(|b| b.cells.len()).sum();
    assert!(total_serial > 0);

    let path_ref = path.clone();
    let parallel_counts = Runtime::run(3, move |world| {
        tess::io::read_tessellation_parallel(world, &path_ref)
            .unwrap()
            .iter()
            .map(|b| b.cells.len())
            .sum::<usize>()
    });
    assert_eq!(parallel_counts.iter().sum::<usize>(), total_serial);

    // volumes still partition the box
    let total_volume: f64 = serial_read
        .iter()
        .flat_map(|b| b.cells.iter())
        .map(|c| c.volume)
        .sum();
    // some boundary cells may be dropped as incomplete; the rest must not
    // exceed the box volume
    assert!(total_volume <= domain.volume() * (1.0 + 1e-9));
    assert!(total_volume > 0.5 * domain.volume());
}

/// Determinism: the whole distributed pipeline is bitwise reproducible.
#[test]
fn distributed_pipeline_is_deterministic() {
    let np = 8;
    let particles = evolved(np, 5);
    let domain = Aabb::cube(np as f64);
    let run = || {
        let dec = Decomposition::regular(domain, 8, [true; 3]);
        let particles_ref = &particles;
        let dec_ref = &dec;
        let out = Runtime::run(4, move |world| {
            let asn = Assignment::new(8, world.nranks());
            let local = partition(particles_ref, dec_ref, &asn, world.rank());
            let r = tess::tessellate(
                world,
                dec_ref,
                &asn,
                &local,
                &TessParams::default().with_ghost(3.0),
            );
            r.blocks
                .values()
                .flat_map(|b| b.cells.iter().map(|c| (b.site_id_of(c), c.volume)))
                .collect::<Vec<_>>()
        });
        let mut all: Vec<(u64, f64)> = out.into_iter().flatten().collect();
        all.sort_by_key(|&(id, _)| id);
        all
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}
