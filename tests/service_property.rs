//! Property-based differential suite for the service's point lookup:
//! random batched lookups against a brute-force nearest-seed oracle, on
//! periodic *and* non-periodic boxes, with query families that pin the
//! hard cases — points exactly on lattice planes (cell faces when the
//! lattice is unjittered, so the distance ties exactly in f64), points on
//! the periodic seam, points outside the domain, and points exactly on a
//! seed. The canonical tie-break (smallest site id at equal exact
//! distance) is part of the oracle, so any non-canonical resolution is a
//! failure, not a flake.

use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::tess::{
    Answer, GhostSpec, KernelMode, MeshService, MeshSnapshot, PointHit, Query, ServiceConfig,
    TessParams,
};
use proptest::prelude::*;

const N: usize = 3;
const BOX: f64 = N as f64;

fn lattice(seed: u64, amp: f64) -> Vec<(u64, Vec3)> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..N * N * N)
        .map(|idx| {
            let (i, j, k) = (idx % N, (idx / N) % N, idx / (N * N));
            let mut p = Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5);
            if amp > 0.0 {
                p += Vec3::new(
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                );
                p = Vec3::new(
                    p.x.rem_euclid(BOX),
                    p.y.rem_euclid(BOX),
                    p.z.rem_euclid(BOX),
                );
            }
            (idx as u64, p)
        })
        .collect()
}

/// Brute-force argmin of exact f64 distance over every cell seed × every
/// periodic image, ties to the smallest site id.
fn oracle_point(snap: &MeshSnapshot, p: Vec3) -> Option<(u64, u64, u64)> {
    let q = snap.wrap_query(p);
    let ext = snap.dec.domain.extent();
    let offs = |a: usize| -> &'static [i32] {
        if snap.dec.periodic[a] {
            &[-1, 0, 1]
        } else {
            &[0]
        }
    };
    let mut best: Option<(f64, u64, u64)> = None; // (d2, site, vol bits)
    for b in snap.blocks.values() {
        for cell in &b.cells {
            let site = b.site_of(cell);
            let id = b.site_id_of(cell);
            for &kx in offs(0) {
                for &ky in offs(1) {
                    for &kz in offs(2) {
                        let img = site
                            + Vec3::new(kx as f64 * ext.x, ky as f64 * ext.y, kz as f64 * ext.z);
                        let d2 = img.dist2(q);
                        let better = match &best {
                            None => true,
                            Some((bd2, bid, _)) => match d2.total_cmp(bd2) {
                                std::cmp::Ordering::Less => true,
                                std::cmp::Ordering::Equal => id < *bid,
                                std::cmp::Ordering::Greater => false,
                            },
                        };
                        if better {
                            best = Some((d2, id, cell.volume.to_bits()));
                        }
                    }
                }
            }
        }
    }
    best.map(|(d2, id, vol)| (id, d2.to_bits(), vol))
}

/// Map one raw tuple to a query point from a family chosen by `kind`.
fn query_from(raw: (f64, f64, f64, u8), particles: &[(u64, Vec3)]) -> Vec3 {
    let (x, y, z, kind) = raw;
    let p = Vec3::new(x * BOX, y * BOX, z * BOX);
    match kind % 8 {
        // exactly on a lattice plane (a cell-face plane on the unjittered
        // lattice, so the two flanking sites tie in exact f64)
        0 => Vec3::new((x * BOX).round().clamp(0.0, BOX), p.y, p.z),
        // on the periodic seam / outer boundary faces
        1 => Vec3::new(0.0, p.y, p.z),
        2 => Vec3::new(p.x, BOX, p.z),
        // outside the domain on two axes (wraps when periodic, clamps
        // into the grid otherwise)
        3 => Vec3::new(p.x + BOX, p.y, p.z - BOX),
        // exactly on a seed: distance must come back exactly 0.0
        4 => {
            let idx = ((x * 1e6) as usize + (y * 1e6) as usize) % particles.len();
            particles[idx].1
        }
        // the domain corner (8-way periodic tie on the exact lattice)
        5 => Vec3::new(0.0, 0.0, 0.0),
        // plain interior points
        _ => p,
    }
}

fn check_case(seed: u64, periodic: bool, exact: bool, raw: &[(f64, f64, f64, u8)]) {
    let amp = if exact { 0.0 } else { 0.25 };
    let particles = lattice(seed, amp);
    let svc = MeshService::spawn(
        Aabb::cube(BOX),
        [periodic; 3],
        &particles,
        ServiceConfig::new(2, 8).with_params(TessParams {
            ghost: GhostSpec::Auto { factor: 2.5 },
            kernel: KernelMode::Stream,
            ..TessParams::default()
        }),
    );
    let snap = svc.snapshot();
    let queries: Vec<Vec3> = raw.iter().map(|&r| query_from(r, &particles)).collect();
    // one batched wave — the grouped kernel path, not one-at-a-time
    let pending: Vec<_> = queries
        .iter()
        .map(|&p| svc.submit(Query::Point(p)).expect("open"))
        .collect();
    for (p, pend) in queries.iter().zip(pending) {
        let r = pend.wait();
        let Answer::Point(got) = r.answer else {
            panic!("non-point answer")
        };
        let want = oracle_point(&snap, *p);
        let got_key: Option<(u64, u64, u64)> =
            got.map(|h: PointHit| (h.site_id, h.dist2.to_bits(), h.volume.to_bits()));
        assert_eq!(
            got_key, want,
            "periodic={periodic} exact={exact} seed={seed} query={p:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Batched lookups on a periodic box match brute force bit-for-bit.
    #[test]
    fn periodic_batches_match_brute_force(
        seed in 0u64..1_000_000,
        exact in 0u8..2,
        raw in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0u8..8), 12..20),
    ) {
        check_case(seed, true, exact == 1, &raw);
    }

    /// Same property on a non-periodic box: no images, queries outside
    /// the domain clamp into the candidate grid instead of wrapping.
    #[test]
    fn nonperiodic_batches_match_brute_force(
        seed in 0u64..1_000_000,
        exact in 0u8..2,
        raw in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0u8..8), 12..20),
    ) {
        check_case(seed, false, exact == 1, &raw);
    }
}

/// The canonical tie-break is pinned, not emergent: on the exact lattice
/// a face-plane query between two surviving cells must tie at d² = 0.25
/// exactly and resolve to the smaller site id, on periodic *and*
/// non-periodic boxes. (Non-periodic boundary cells are culled — they
/// cannot be certified — so its pinned tie uses two interior sites of a
/// 4³ lattice.)
#[test]
fn canonical_tie_break_is_pinned() {
    // Periodic 3³ box: boundary ties and the seam tie both exist.
    let svc = MeshService::spawn(
        Aabb::cube(BOX),
        [true; 3],
        &lattice(0, 0.0),
        ServiceConfig::new(1, 8).with_params(TessParams {
            ghost: GhostSpec::Auto { factor: 2.5 },
            ..TessParams::default()
        }),
    );
    // face plane between sites 0 and 1, and the seam tie between site 0
    // and the periodic image of site 2 (at x = -0.5)
    for q in [Vec3::new(1.0, 0.5, 0.5), Vec3::new(0.0, 0.5, 0.5)] {
        let r = svc.query(Query::Point(q)).expect("open");
        let Answer::Point(Some(hit)) = r.answer else {
            panic!("no hit at {q:?}")
        };
        assert_eq!(hit.site_id, 0, "tie at {q:?} must go to site 0");
        assert_eq!(hit.dist2.to_bits(), 0.25f64.to_bits());
    }
    drop(svc);

    // Non-periodic 4³ box: tie two interior sites across the x = 2 plane
    // — ids 21 = (1,1,1) and 22 = (2,1,1); the smaller must win.
    let n = 4usize;
    let particles: Vec<(u64, Vec3)> = (0..n * n * n)
        .map(|idx| {
            let (i, j, k) = (idx % n, (idx / n) % n, idx / (n * n));
            (
                idx as u64,
                Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5),
            )
        })
        .collect();
    let svc = MeshService::spawn(
        Aabb::cube(n as f64),
        [false; 3],
        &particles,
        ServiceConfig::new(1, 8).with_params(TessParams {
            ghost: GhostSpec::Auto { factor: 2.5 },
            ..TessParams::default()
        }),
    );
    let q = Vec3::new(2.0, 1.5, 1.5);
    let r = svc.query(Query::Point(q)).expect("open");
    let Answer::Point(Some(hit)) = r.answer else {
        panic!("no hit at {q:?}")
    };
    assert_eq!(hit.site_id, 21, "interior tie must go to the smaller id");
    assert_eq!(hit.dist2.to_bits(), 0.25f64.to_bits());
    // the oracle agrees, so the pin and the differential suite are one
    let want = oracle_point(&svc.snapshot(), q).unwrap();
    assert_eq!(want.0, 21);
}
