//! Concurrency stress for the resident service: N writer epochs racing M
//! reader threads. Every response must carry a valid epoch and match that
//! epoch's from-scratch oracle mesh exactly, and the request-id
//! accounting must prove no query was dropped or answered twice — the ids
//! handed out are consecutive from 1, so the sorted multiset of response
//! ids must be exactly 1..=total.

use std::collections::BTreeMap;

use meshing_universe::diy::comm::Runtime;
use meshing_universe::diy::decomposition::{Assignment, Decomposition};
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::tess::grid::StreamScratch;
use meshing_universe::tess::{
    self, GhostSpec, KernelMode, MeshService, MeshSnapshot, Query, ServiceConfig, TessParams,
    Update,
};

const BOX: f64 = 4.0;
const NBLOCKS: usize = 8;
const EPOCHS: u64 = 4;
const READERS: usize = 4;
const QUERIES_PER_READER: usize = 120;

fn params() -> TessParams {
    TessParams {
        ghost: GhostSpec::Auto { factor: 2.5 },
        kernel: KernelMode::Stream,
        ..TessParams::default()
    }
}

fn jittered(n: usize, seed: u64, amp: f64) -> Vec<(u64, Vec3)> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n * n * n)
        .map(|idx| {
            let (i, j, k) = (idx % n, (idx / n) % n, idx / (n * n));
            let p = Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5)
                + Vec3::new(
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                );
            let ng = n as f64;
            (
                idx as u64,
                Vec3::new(p.x.rem_euclid(ng), p.y.rem_euclid(ng), p.z.rem_euclid(ng)),
            )
        })
        .collect()
}

/// The delta the writer applies to move from epoch `e` to `e + 1`:
/// deterministically displace every third particle (phase-shifted by the
/// epoch so successive deltas touch different particles).
fn delta_for(epoch: u64, current: &[(u64, Vec3)]) -> Vec<(u64, Vec3)> {
    current
        .iter()
        .filter(|(id, _)| id % 3 == epoch % 3)
        .map(|&(id, p)| {
            let s = 0.07 * ((id + epoch) % 5) as f64 - 0.14;
            (
                id,
                Vec3::new(
                    (p.x + s).rem_euclid(BOX),
                    (p.y - s).rem_euclid(BOX),
                    (p.z + 0.5 * s).rem_euclid(BOX),
                ),
            )
        })
        .collect()
}

fn partition(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    asn: &Assignment,
    rank: usize,
) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
    let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> =
        asn.blocks_of_rank(rank).map(|g| (g, Vec::new())).collect();
    for &(id, p) in particles {
        let gid = dec.block_of_point(p);
        if let Some(v) = local.get_mut(&gid) {
            v.push((id, p));
        }
    }
    local
}

fn oracle_snapshot(epoch: u64, particles: &[(u64, Vec3)]) -> MeshSnapshot {
    let dec = Decomposition::regular(Aabb::cube(BOX), NBLOCKS, [true; 3]);
    let dec_ref = &dec;
    let rows = Runtime::run(2, move |world| {
        let asn = Assignment::new(NBLOCKS, world.nranks());
        let local = partition(particles, dec_ref, &asn, world.rank());
        let r = tess::tessellate(world, dec_ref, &asn, &local, &params());
        (r.blocks, r.stats)
    });
    let mut blocks = BTreeMap::new();
    let mut stats = tess::TessStats::default();
    for (bs, s) in rows {
        blocks.extend(bs);
        stats = stats.merge(s);
    }
    MeshSnapshot::build(epoch, dec, blocks, stats)
}

/// Deterministic query for reader `t`, iteration `i`.
fn query_for(t: usize, i: usize) -> Query {
    let u = |s: u64| {
        let mut x = s.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        ((x ^ (x >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    };
    let s = (t * QUERIES_PER_READER + i) as u64;
    let p = Vec3::new(u(s) * BOX, u(s ^ 77) * BOX, u(s ^ 991) * BOX);
    match i % 6 {
        0 => Query::BoxCells(Aabb::new(p * 0.5, p * 0.5 + Vec3::splat(1.0 + u(s ^ 5)))),
        1 => Query::Region(Aabb::new(Vec3::splat(0.0), p)),
        2 => Query::Point(Vec3::new(p.x + BOX, p.y - BOX, p.z)), // wraps
        _ => Query::Point(p),
    }
}

#[test]
fn writer_epochs_race_reader_threads_without_mixing_or_loss() {
    // Precompute every epoch's particle set and its from-scratch oracle.
    let mut sets: Vec<Vec<(u64, Vec3)>> = vec![jittered(4, 17, 0.3)];
    let mut deltas: Vec<Vec<(u64, Vec3)>> = Vec::new();
    for e in 1..EPOCHS {
        let prev = sets.last().unwrap();
        let delta = delta_for(e, prev);
        let mut next = prev.clone();
        for &(id, p) in &delta {
            next[id as usize] = (id, p);
        }
        deltas.push(delta);
        sets.push(next);
    }
    let oracles: Vec<MeshSnapshot> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| oracle_snapshot(i as u64 + 1, s))
        .collect();

    let svc = MeshService::spawn(
        Aabb::cube(BOX),
        [true; 3],
        &sets[0],
        ServiceConfig::new(2, NBLOCKS)
            .with_workers(4)
            .with_batch_max(32)
            .with_params(params()),
    );

    let mut observed: Vec<(Query, tess::Response)> = Vec::new();
    std::thread::scope(|scope| {
        let svc = &svc;
        let mut readers = Vec::new();
        for t in 0..READERS {
            readers.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(QUERIES_PER_READER);
                for i in 0..QUERIES_PER_READER {
                    let q = query_for(t, i);
                    let r = svc.query(q.clone()).expect("service open");
                    out.push((q, r));
                }
                out
            }));
        }
        // The writer publishes epochs 2..=EPOCHS while the readers run.
        for (i, delta) in deltas.iter().enumerate() {
            let rep = svc.update(Update::Delta {
                upserts: delta.clone(),
                removes: Vec::new(),
            });
            assert_eq!(rep.epoch, i as u64 + 2);
        }
        for h in readers {
            observed.extend(h.join().expect("reader thread"));
        }
    });

    // Every response: valid epoch, answer equal to that epoch's oracle.
    let mut scratch = StreamScratch::default();
    let mut per_epoch = vec![0usize; EPOCHS as usize];
    for (q, r) in &observed {
        assert!(
            (1..=EPOCHS).contains(&r.epoch),
            "response carries invalid epoch {}",
            r.epoch
        );
        per_epoch[(r.epoch - 1) as usize] += 1;
        let want = oracles[(r.epoch - 1) as usize].answer(q, &mut scratch);
        assert_eq!(
            r.answer, want,
            "epoch {} answer diverged for {q:?}",
            r.epoch
        );
    }
    let total = (READERS * QUERIES_PER_READER) as u64;
    assert_eq!(per_epoch.iter().sum::<usize>() as u64, total);

    // Request-id accounting: ids are handed out consecutively from 1, so
    // the sorted response ids must be exactly 1..=total — any drop leaves
    // a hole, any double-answer a duplicate.
    let mut ids: Vec<u64> = observed.iter().map(|(_, r)| r.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (1..=total).collect::<Vec<u64>>(), "id accounting");

    // Final snapshot is the last epoch, bit-identical to its oracle.
    let final_snap = svc.snapshot();
    assert_eq!(final_snap.epoch, EPOCHS);
    let bits = |snap: &MeshSnapshot| -> BTreeMap<u64, (u64, u64)> {
        snap.blocks
            .values()
            .flat_map(|b| {
                b.cells
                    .iter()
                    .map(|c| (b.site_id_of(c), (c.volume.to_bits(), c.area.to_bits())))
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    assert_eq!(bits(&final_snap), bits(&oracles[EPOCHS as usize - 1]));

    let stats = svc.shutdown();
    assert_eq!(stats.enqueued, total);
    assert_eq!(stats.answered, total);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.epochs_published, EPOCHS);
    let hists = svc.hists();
    assert_eq!(hists.latency_ns.n(), total);
}
