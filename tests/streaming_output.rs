//! Bounded-memory streaming output acceptance gate: the mesh a
//! [`tess::tessellate_streaming`] pass writes to disk must be
//! **bit-identical** to the in-memory merge [`tess::tessellate`] produces
//! for the same configuration — block for block, byte for byte — across
//! rank counts, decomposition schemes, discovery kernels, ghost modes,
//! and volume culling. Streaming changes *residency*, never bits.
//!
//! Matrix: {1, 2, 4, 8} ranks × {regular, kd} × {ring, stream} under auto
//! ghosts, plus a multi-round adaptive run, a culled run, and the
//! RunReport memory-accounting invariants.

use std::collections::BTreeMap;
use std::path::PathBuf;

use bench_harness::corpus::ClusterSpec;
use bench_harness::partition_particles;
use meshing_universe::diy::codec::Encode;
use meshing_universe::diy::comm::Runtime;
use meshing_universe::diy::decomposition::{Assignment, DecompScheme, Decomposition};
use meshing_universe::diy::metrics::collect_report;
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::tess::{self, GhostSpec, KernelMode, TessParams};

const NBLOCKS: usize = 8;

const KD: DecompScheme = DecompScheme::Kd {
    sample: DecompScheme::DEFAULT_KD_SAMPLE,
};

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("streaming-output-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn corpus() -> (Vec<(u64, Vec3)>, f64) {
    let spec = ClusterSpec::corner_heavy(16.0, 24, 40, 42);
    (spec.generate(), spec.side)
}

fn build(
    particles: &[(u64, Vec3)],
    side: f64,
    scheme: DecompScheme,
    nranks: usize,
) -> (Decomposition, Assignment) {
    let positions: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
    let dec = scheme.build(Aabb::cube(side), NBLOCKS, [true; 3], &positions);
    let asn = match scheme {
        DecompScheme::Regular => Assignment::new(dec.nblocks(), nranks),
        DecompScheme::Kd { .. } => {
            let mut counts = vec![0u64; dec.nblocks()];
            for &(_, p) in particles {
                counts[dec.block_of_point(p) as usize] += 1;
            }
            Assignment::weighted(&counts, nranks)
        }
    };
    (dec, asn)
}

/// In-memory merge via [`tess::tessellate`]: gid → serialized block bytes,
/// plus the globally merged stats.
fn accumulated(
    particles: &[(u64, Vec3)],
    side: f64,
    scheme: DecompScheme,
    nranks: usize,
    params: &TessParams,
) -> (BTreeMap<u64, Vec<u8>>, tess::TessStats) {
    let (dec, asn) = build(particles, side, scheme, nranks);
    let per_rank = Runtime::run(nranks, |world| {
        let local = partition_particles(particles, &dec, &asn, world.rank());
        let r = tess::tessellate(world, &dec, &asn, &local, params);
        let stats = tess::driver::global_stats(world, r.stats);
        let bytes: Vec<(u64, Vec<u8>)> = r
            .blocks
            .iter()
            .map(|(&gid, b)| (gid, b.to_bytes()))
            .collect();
        (bytes, stats)
    });
    let stats = per_rank[0].1;
    let mut merged = BTreeMap::new();
    for (bytes, s) in per_rank {
        assert_eq!(s, stats, "global_stats must agree on every rank");
        for (gid, b) in bytes {
            assert!(merged.insert(gid, b).is_none(), "block {gid} owned twice");
        }
    }
    (merged, stats)
}

/// Streaming pass writing to `path`; returns the read-back file content as
/// gid → serialized block bytes plus the merged stats and file totals.
#[allow(clippy::type_complexity)]
fn streamed(
    particles: &[(u64, Vec3)],
    side: f64,
    scheme: DecompScheme,
    nranks: usize,
    params: &TessParams,
    name: &str,
) -> (BTreeMap<u64, Vec<u8>>, tess::TessStats, (u64, u64, u64)) {
    let (dec, asn) = build(particles, side, scheme, nranks);
    let path = tmpfile(name);
    let path_ref = &path;
    let per_rank = Runtime::run(nranks, |world| {
        let local = partition_particles(particles, &dec, &asn, world.rank());
        let s = tess::tessellate_streaming(world, &dec, &asn, &local, params, path_ref)
            .expect("streaming pass");
        let stats = tess::driver::global_stats(world, s.stats);
        (
            stats,
            (s.blocks_written, s.payload_bytes, s.file_bytes),
            s.ghost_used,
        )
    });
    let (stats, totals, _) = per_rank[0];
    for &(s, t, _) in &per_rank {
        assert_eq!(s, stats);
        assert_eq!(t, totals, "file totals are global and rank-identical");
    }
    let blocks: BTreeMap<u64, Vec<u8>> = tess::io::read_tessellation(&path)
        .unwrap()
        .into_iter()
        .map(|b| (b.gid, b.to_bytes()))
        .collect();
    (blocks, stats, totals)
}

fn assert_same_blocks(
    reference: &BTreeMap<u64, Vec<u8>>,
    got: &BTreeMap<u64, Vec<u8>>,
    label: &str,
) {
    assert_eq!(
        reference.keys().collect::<Vec<_>>(),
        got.keys().collect::<Vec<_>>(),
        "{label}: block gid sets differ"
    );
    for (gid, r) in reference {
        assert!(
            got[gid] == *r,
            "{label}: block {gid} bytes differ from the in-memory merge"
        );
    }
}

/// The acceptance matrix: streamed file == in-memory merge at 1/2/4/8
/// ranks under both decomposition schemes and both kernels (auto ghosts:
/// single collective round, the fixed-wave streaming path).
#[test]
fn streamed_file_matches_in_memory_merge_across_the_matrix() {
    let (particles, side) = corpus();
    for (scheme, sname) in [(DecompScheme::Regular, "reg"), (KD, "kd")] {
        for kernel in [KernelMode::Ring, KernelMode::Stream] {
            let params = TessParams::default().with_kernel(kernel).with_streaming();
            let (reference, ref_stats) = accumulated(&particles, side, scheme, 1, &params);
            for nranks in [1usize, 2, 4, 8] {
                let label = format!("{sname}@{nranks} {kernel:?}");
                let name = format!("matrix-{sname}-{nranks}-{}.tess", kernel.as_str());
                let (blocks, stats, (nblocks, payload, file)) =
                    streamed(&particles, side, scheme, nranks, &params, &name);
                assert_same_blocks(&reference, &blocks, &label);
                assert_eq!(stats.cells, ref_stats.cells, "{label}: cell counts");
                assert_eq!(nblocks as usize, reference.len(), "{label}");
                let expected_payload: u64 = reference.values().map(|b| b.len() as u64).sum();
                assert_eq!(payload, expected_payload, "{label}: payload bytes");
                assert!(file > payload, "{label}: framing must be accounted");
            }
        }
    }
}

/// Adaptive ghosts drive the round-loop streaming path: blocks leave
/// memory as soon as a round stops re-requesting them, over multiple
/// rounds, and the file still matches the accumulated merge.
#[test]
fn adaptive_streaming_matches_across_rounds() {
    let (particles, side) = corpus();
    let params = TessParams {
        ghost: GhostSpec::Adaptive {
            initial_factor: 0.5,
            max_rounds: 8,
        },
        streaming: true,
        ..TessParams::default()
    };
    for nranks in [1usize, 4] {
        let (reference, ref_stats) =
            accumulated(&particles, side, DecompScheme::Regular, nranks, &params);
        let name = format!("adaptive-{nranks}.tess");
        let (blocks, stats, _) = streamed(
            &particles,
            side,
            DecompScheme::Regular,
            nranks,
            &params,
            &name,
        );
        assert_same_blocks(&reference, &blocks, &format!("adaptive@{nranks}"));
        assert!(
            stats.ghost_rounds > 1,
            "corpus must exercise the multi-round path (got {} rounds)",
            stats.ghost_rounds
        );
        assert_eq!(stats.ghost_rounds, ref_stats.ghost_rounds);
        assert_eq!(stats.cells, ref_stats.cells);
        assert_eq!(stats.candidates_tested, ref_stats.candidates_tested);
    }
}

/// Volume culling composes with streaming: the culled streamed file equals
/// the culled accumulated merge and is smaller than the unculled one.
#[test]
fn culled_streaming_matches_and_shrinks_the_file() {
    let (particles, side) = corpus();
    let full = TessParams::default().with_streaming();
    let culled = TessParams::default().with_min_volume(0.05).with_streaming();
    let (_, _, (_, full_payload, _)) = streamed(
        &particles,
        side,
        DecompScheme::Regular,
        2,
        &full,
        "cull-full.tess",
    );
    let (reference, _) = accumulated(&particles, side, DecompScheme::Regular, 2, &culled);
    let (blocks, _, (_, culled_payload, _)) = streamed(
        &particles,
        side,
        DecompScheme::Regular,
        2,
        &culled,
        "cull-min.tess",
    );
    assert_same_blocks(&reference, &blocks, "culled@2");
    assert!(
        culled_payload < full_payload,
        "culling must shrink the payload ({culled_payload} vs {full_payload})"
    );
}

/// Memory accounting rides the normal metrics pipeline: a streaming run's
/// merged RunReport carries nonzero allocator and RSS counters, identical
/// on every rank, and `normalized()` strips them for determinism gates.
#[test]
fn streaming_run_report_carries_memory_counters() {
    let (particles, side) = corpus();
    let params = TessParams::default().with_streaming();
    let (dec, asn) = build(&particles, side, DecompScheme::Regular, 4);
    let path = tmpfile("report-mem.tess");
    let path_ref = &path;
    let reports = Runtime::run(4, |world| {
        let local = partition_particles(&particles, &dec, &asn, world.rank());
        tess::tessellate_streaming(world, &dec, &asn, &local, &params, path_ref).unwrap();
        collect_report(world)
    });
    for r in &reports {
        assert_eq!(r, &reports[0], "merged report must be rank-identical");
    }
    let mem = reports[0].memory;
    assert!(mem.alloc_count > 0, "allocation count must be live");
    assert!(mem.alloc_bytes_total > 0);
    assert!(mem.peak_live_bytes >= mem.live_bytes.min(mem.peak_live_bytes));
    if cfg!(target_os = "linux") {
        assert!(mem.peak_rss_kb >= mem.rss_kb && mem.rss_kb > 0);
    }
    let normalized = reports[0].normalized();
    assert_eq!(
        normalized.memory,
        Default::default(),
        "normalized() must strip memory (as non-deterministic as CPU time)"
    );
    let json = reports[0].to_json();
    assert!(json.contains("\"memory\":{\"alloc_count\":"));
}
