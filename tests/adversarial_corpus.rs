//! Adversarial-distribution corpus for the full tessellation pipeline.
//!
//! Each distribution is chosen to stress a different failure surface of the
//! cell kernels and the ghost protocol: clustered halo-like sets (huge
//! density contrast, elongated void cells), coplanar and collinear lattices
//! (degenerate bisector geometry), exact duplicates (zero-length bisectors),
//! and periodic-seam-biased sets (wrap-around adjacency dominates). For
//! every distribution the pipeline must not panic, must produce only
//! non-negative finite cell volumes, and the ring and streamed kernels must
//! agree bit for bit — serially and on 4 ranks with the adaptive ghost
//! protocol.

use std::collections::BTreeMap;

use meshing_universe::diy::comm::Runtime;
use meshing_universe::diy::decomposition::{Assignment, Decomposition};
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::tess::{self, GhostSpec, KernelMode, TessParams};

fn partition(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    asn: &Assignment,
    rank: usize,
) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
    let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> =
        asn.blocks_of_rank(rank).map(|g| (g, Vec::new())).collect();
    for &(id, p) in particles {
        let gid = dec.block_of_point(p);
        if let Some(v) = local.get_mut(&gid) {
            v.push((id, p));
        }
    }
    local
}

/// Bit-level fingerprint of one cell, plus its decoded volume for the
/// non-negativity check.
type CellBits = (u64, u64, Vec<u64>);

fn mesh_bits(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    nranks: usize,
    params: &TessParams,
) -> BTreeMap<u64, CellBits> {
    let collected = Runtime::run(nranks, move |world| {
        let asn = Assignment::new(dec.nblocks(), world.nranks());
        let local = partition(particles, dec, &asn, world.rank());
        let r = tess::tessellate(world, dec, &asn, &local, params);
        r.blocks
            .values()
            .flat_map(|b| {
                b.cells
                    .iter()
                    .map(|c| {
                        (
                            b.site_id_of(c),
                            (
                                c.volume.to_bits(),
                                c.area.to_bits(),
                                c.faces.iter().map(|f| f.neighbor).collect::<Vec<u64>>(),
                            ),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    });
    let mut merged = BTreeMap::new();
    for (id, bits) in collected.into_iter().flatten() {
        let prev = merged.insert(id, bits);
        assert!(prev.is_none(), "cell {id} produced by two blocks");
    }
    merged
}

/// Run one distribution through serial and 4-rank adaptive configurations
/// with both kernels; assert kernel agreement and sane volumes everywhere.
fn exercise(label: &str, particles: &[(u64, Vec3)], dec: &Decomposition, keep_incomplete: bool) {
    let ghost = if keep_incomplete {
        // degenerate sets never certify; bound the rounds and keep what
        // the final round produced
        GhostSpec::Explicit(2.0)
    } else {
        GhostSpec::adaptive()
    };
    for nranks in [1usize, 4] {
        let mut reference: Option<BTreeMap<u64, CellBits>> = None;
        for kernel in [KernelMode::Ring, KernelMode::Stream] {
            let params = TessParams {
                ghost,
                keep_incomplete,
                kernel,
                ..TessParams::default()
            };
            let mesh = mesh_bits(particles, dec, nranks, &params);
            for (id, (vol_bits, area_bits, _)) in &mesh {
                let (vol, area) = (f64::from_bits(*vol_bits), f64::from_bits(*area_bits));
                assert!(
                    vol.is_finite() && vol >= 0.0,
                    "{label}: cell {id} volume {vol}"
                );
                assert!(
                    area.is_finite() && area >= 0.0,
                    "{label}: cell {id} area {area}"
                );
            }
            match &reference {
                None => reference = Some(mesh),
                Some(r) => assert_eq!(&mesh, r, "{label}: kernels disagree at {nranks} ranks"),
            }
        }
    }
}

fn wrap(side: f64, p: Vec3) -> Vec3 {
    Vec3::new(
        p.x.rem_euclid(side),
        p.y.rem_euclid(side),
        p.z.rem_euclid(side),
    )
}

#[test]
fn clustered_halo_like_points() {
    // NFW-ish clumps — tight cores with a handful of far outliers each —
    // from the shared seeded generator the benches also use.
    let side = 8.0;
    let particles = bench_harness::corpus::ClusterSpec {
        side,
        nclumps: 16,
        per_clump: 20,
        sigma_frac: 0.15 / 8.0,
        outlier_every: 5,
        filament: 0,
        background: 0,
        cluster_frac: 1.0,
        seed: 71,
    }
    .generate();
    let dec = Decomposition::regular(Aabb::cube(side), 8, [true; 3]);
    exercise("clustered halos", &particles, &dec, false);
}

#[test]
fn coplanar_sheet_and_collinear_filament() {
    // All points on one z-plane: every bisector between sheet members is
    // vertical, cells are unbounded columns clipped only by the region —
    // never certifiable, so keep_incomplete publishes them.
    let side = 6.0;
    let mut pts = Vec::new();
    for j in 0..12 {
        for i in 0..12 {
            pts.push(Vec3::new(0.25 + i as f64 * 0.5, 0.25 + j as f64 * 0.5, 3.0));
        }
    }
    // plus a collinear filament along x at another height
    for i in 0..24 {
        pts.push(Vec3::new(0.125 + i as f64 * 0.25, 1.5, 1.0));
    }
    let particles: Vec<(u64, Vec3)> = pts
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p))
        .collect();
    let dec = Decomposition::regular(Aabb::cube(side), 8, [false; 3]);
    exercise("coplanar+collinear", &particles, &dec, true);
}

#[test]
fn exact_duplicates_and_near_coincident_pairs() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(73);
    let side = 6.0;
    let mut pts = Vec::new();
    for _ in 0..100 {
        let p = Vec3::new(
            rng.gen_range(0.0..side),
            rng.gen_range(0.0..side),
            rng.gen_range(0.0..side),
        );
        pts.push(p);
        if rng.gen_range(0.0..1.0) < 0.3 {
            // exact duplicate: distinct id, bit-identical position
            pts.push(p);
        } else if rng.gen_range(0.0..1.0) < 0.3 {
            // near-coincident at the clipping tolerance scale
            pts.push(p + Vec3::new(1e-10, 0.0, -1e-10));
        }
    }
    let particles: Vec<(u64, Vec3)> = pts
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p))
        .collect();
    let dec = Decomposition::regular(Aabb::cube(side), 8, [true; 3]);
    // duplicate sites can never certify against each other; keep what the
    // bounded protocol produces rather than looping forever
    exercise("exact duplicates", &particles, &dec, true);
}

#[test]
fn periodic_seam_biased_points() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(79);
    let side = 6.0;
    let mut pts = Vec::new();
    // 90% of points within 0.2 of a periodic face, many straddling the
    // wrap seam; every cell's natural neighbors live across the boundary
    for _ in 0..220 {
        let mut p = Vec3::new(
            rng.gen_range(0.0..side),
            rng.gen_range(0.0..side),
            rng.gen_range(0.0..side),
        );
        let axis = rng.gen_range(0..4);
        if axis < 3 {
            let near_min = rng.gen_range(0.0..1.0) < 0.5;
            let off = rng.gen_range(-0.2..0.2);
            p[axis] = if near_min { off } else { side + off };
        }
        pts.push(wrap(side, p));
    }
    let particles: Vec<(u64, Vec3)> = pts
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p))
        .collect();
    let dec = Decomposition::regular(Aabb::cube(side), 8, [true; 3]);
    exercise("periodic seam", &particles, &dec, false);
}
