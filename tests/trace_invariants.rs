//! Flight-recorder invariants, exercised on the adaptive tessellation
//! pipeline at 1, 2, 4, and 8 ranks:
//!
//! * **Non-interference** — a `TESS_TRACE=full` run produces a mesh
//!   bit-identical to an untraced run, and the transport conservation
//!   invariant still holds with tracing on.
//! * **Well-formed export** — the merged trace renders to Chrome-trace
//!   JSON that parses, keeps timestamps monotonic per track, and nests
//!   spans properly (balanced, name-matched B/E pairs), at every rank
//!   count.
//! * **Exact overflow accounting** — a capacity-bounded recorder never
//!   loses count: recorded + dropped == emitted, always.
//!
//! The trace mode is a process-wide switch, so every test that flips it
//! serializes on one mutex and restores `Off` before releasing it.

use std::collections::BTreeMap;
use std::sync::Mutex;

use meshing_universe::diy::comm::Runtime;
use meshing_universe::diy::decomposition::{Assignment, Decomposition};
use meshing_universe::diy::metrics::collect_report;
use meshing_universe::diy::trace::{
    chrome_trace_json, collect_traces, set_trace_mode, validate_chrome_trace, Event, EventKind,
    RankTrace, TraceMode, TraceState, NO_NAME, TID_MAIN,
};
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::tess::{self, GhostSpec, TessParams};

static TRACE_MODE_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic clustered-ish particle set (jittered lattice).
fn jittered(n: usize, seed: u64) -> Vec<(u64, Vec3)> {
    use meshing_universe::rand::{Rng, SeedableRng};
    let mut rng = meshing_universe::rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n * n * n)
        .map(|idx| {
            let (i, j, k) = (idx % n, (idx / n) % n, idx / (n * n));
            let p = Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5);
            let q = p + Vec3::new(
                rng.gen_range(-0.4..0.4),
                rng.gen_range(-0.4..0.4),
                rng.gen_range(-0.4..0.4),
            );
            let ng = n as f64;
            (
                idx as u64,
                Vec3::new(q.x.rem_euclid(ng), q.y.rem_euclid(ng), q.z.rem_euclid(ng)),
            )
        })
        .collect()
}

/// Mesh fingerprint: site id → (volume bits, area bits).
type Mesh = BTreeMap<u64, (u64, u64)>;

/// One adaptive distributed tessellation; returns the mesh fingerprint,
/// whether the merged metrics conserve traffic, and root's merged trace.
fn run_adaptive(
    nranks: usize,
    particles: &[(u64, Vec3)],
    n: usize,
) -> (Mesh, bool, Vec<RankTrace>) {
    let domain = Aabb::cube(n as f64);
    let nblocks = nranks.max(2);
    let dec = Decomposition::regular(domain, nblocks, [true; 3]);
    let params = TessParams {
        ghost: GhostSpec::Adaptive {
            initial_factor: 0.75,
            max_rounds: 8,
        },
        ..TessParams::default()
    };
    let rows = Runtime::run(nranks, move |world| {
        let asn = Assignment::new(nblocks, world.nranks());
        let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> = asn
            .blocks_of_rank(world.rank())
            .map(|g| (g, Vec::new()))
            .collect();
        for &(id, p) in particles {
            let gid = dec.block_of_point(p);
            if let Some(v) = local.get_mut(&gid) {
                v.push((id, p));
            }
        }
        let r = tess::tessellate(world, &dec, &asn, &local, &params);
        let conserved = collect_report(world).is_conserved();
        let traces = collect_traces(world);
        let mesh: Vec<(u64, (u64, u64))> = r
            .blocks
            .values()
            .flat_map(|b| {
                b.cells
                    .iter()
                    .map(|c| (b.site_id_of(c), (c.volume.to_bits(), c.area.to_bits())))
                    .collect::<Vec<_>>()
            })
            .collect();
        (mesh, conserved, traces)
    });
    let mut mesh = Mesh::new();
    let mut conserved = true;
    let mut traces = None;
    for (m, c, t) in rows {
        for (id, bits) in m {
            assert!(mesh.insert(id, bits).is_none(), "cell {id} duplicated");
        }
        conserved &= c;
        if let Some(t) = t {
            traces = Some(t);
        }
    }
    (mesh, conserved, traces.expect("root rank trace"))
}

#[test]
fn tracing_does_not_perturb_the_mesh_and_conservation_holds() {
    let _guard = TRACE_MODE_LOCK.lock().unwrap();
    let n = 5;
    let particles = jittered(n, 11);
    for nranks in [2usize, 4] {
        set_trace_mode(TraceMode::Off);
        let (mesh_off, conserved_off, traces_off) = run_adaptive(nranks, &particles, n);
        set_trace_mode(TraceMode::Full);
        let (mesh_full, conserved_full, traces_full) = run_adaptive(nranks, &particles, n);
        set_trace_mode(TraceMode::Off);

        assert_eq!(
            mesh_off, mesh_full,
            "nranks={nranks}: traced mesh differs from untraced mesh"
        );
        assert_eq!(mesh_off.len(), n * n * n, "nranks={nranks}: cells missing");
        assert!(conserved_off && conserved_full, "nranks={nranks}");
        assert!(
            traces_off.iter().all(|t| t.events.is_empty()),
            "nranks={nranks}: trace-off run recorded events"
        );
        assert!(
            traces_full.iter().any(|t| !t.events.is_empty()),
            "nranks={nranks}: traced run recorded nothing"
        );
    }
}

#[test]
fn chrome_export_is_wellformed_and_spans_nest_at_every_rank_count() {
    let _guard = TRACE_MODE_LOCK.lock().unwrap();
    let n = 5;
    let particles = jittered(n, 23);
    for nranks in [1usize, 2, 4, 8] {
        set_trace_mode(TraceMode::Full);
        let (_, _, traces) = run_adaptive(nranks, &particles, n);
        set_trace_mode(TraceMode::Off);

        assert_eq!(traces.len(), nranks, "one merged trace entry per rank");
        for t in &traces {
            assert_eq!(
                t.emitted,
                t.events.len() as u64 + t.dropped,
                "rank {}: overflow accounting broken",
                t.rank
            );
            // the adaptive driver ran at least one ghost-round marker and
            // the phase spans on every rank
            assert!(
                t.events
                    .iter()
                    .any(|e| e.kind == EventKind::Mark && t.name(e.name) == "ghost_round"),
                "rank {}: no ghost_round marker",
                t.rank
            );
            assert!(
                t.events.iter().any(|e| e.kind == EventKind::SpanBegin),
                "rank {}: no spans",
                t.rank
            );
        }
        let json = chrome_trace_json(&traces);
        let n_records = validate_chrome_trace(&json)
            .unwrap_or_else(|e| panic!("nranks={nranks}: exported Chrome trace invalid: {e}"));
        assert!(n_records > 0, "nranks={nranks}: empty export");
    }
}

#[test]
fn overflow_accounting_is_exact() {
    // No mode flip needed: TraceState is a plain recorder.
    let cap = 16usize;
    let mut state = TraceState::with_cap(cap);
    let total = 1000u64;
    for i in 0..total {
        state.push(Event {
            t_ns: i,
            kind: EventKind::Mark,
            tid: TID_MAIN,
            name: NO_NAME,
            a: i,
            b: 0,
        });
    }
    assert_eq!(state.emitted(), total);
    assert_eq!(state.recorded(), cap, "prefix-keep: oldest events survive");
    assert_eq!(state.dropped(), total - cap as u64);
    assert_eq!(state.recorded() as u64 + state.dropped(), state.emitted());
    let snap = state.snapshot(3);
    assert_eq!(snap.rank, 3);
    assert_eq!(snap.emitted, total);
    assert_eq!(snap.events.len() as u64 + snap.dropped, snap.emitted);
    // prefix-keep: the survivors are exactly the first `cap` events
    assert!(snap.events.iter().enumerate().all(|(i, e)| e.a == i as u64));
}
