//! Property-based invariants of the tessellation over random particle
//! configurations (proptest).

use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::tess::{self, GhostSpec, KernelMode, TessParams};
use proptest::prelude::*;

/// Jittered periodic lattice: `n³` particles, never collinear or wrapped,
/// so every cell is certifiable with a modest ghost.
fn jittered_lattice(n: usize, seed: u64, amp: f64) -> Vec<(u64, Vec3)> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n * n * n)
        .map(|idx| {
            let (i, j, k) = (idx % n, (idx / n) % n, idx / (n * n));
            let p = Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5)
                + Vec3::new(
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                );
            let ng = n as f64;
            (
                idx as u64,
                Vec3::new(p.x.rem_euclid(ng), p.y.rem_euclid(ng), p.z.rem_euclid(ng)),
            )
        })
        .collect()
}

/// Degenerate point families the geometry kernels must survive.
fn degenerate_points(family: u8, n: usize, seed: u64) -> Vec<Vec3> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    match family % 3 {
        // duplicates: half the points repeated exactly
        0 => {
            let base: Vec<Vec3> = (0..n.div_ceil(2))
                .map(|_| {
                    Vec3::new(
                        rng.gen_range(0.5..3.5),
                        rng.gen_range(0.5..3.5),
                        rng.gen_range(0.5..3.5),
                    )
                })
                .collect();
            base.iter().chain(base.iter()).copied().take(n).collect()
        }
        // collinear: evenly spread along one diagonal
        1 => (0..n)
            .map(|i| {
                let t = (i as f64 + 0.5) / n as f64;
                Vec3::new(0.5, 0.5, 0.5) + Vec3::new(3.0, 3.0, 3.0) * t
            })
            .collect(),
        // cospherical: random directions on a sphere around the center
        _ => (0..n)
            .map(|_| {
                let d = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                let d = d.normalized().unwrap_or(Vec3::new(1.0, 0.0, 0.0));
                Vec3::new(2.0, 2.0, 2.0) + d * 1.5
            })
            .collect(),
    }
}

/// Random particle sets that satisfy the tessellation's standing
/// assumption (shared with the paper): cells are small compared to the
/// ghost region, so no periodic Voronoi cell wraps around the torus. Fully
/// collinear or tightly clustered sets violate that — their cells span the
/// box — so the generator anchors one jittered particle per octant.
fn particles_strategy(max_n: usize, box_len: f64) -> impl Strategy<Value = Vec<(u64, Vec3)>> {
    let h = box_len / 2.0;
    let anchors = proptest::collection::vec(0.0..h * 0.9, 24).prop_map(move |j| {
        (0..8)
            .map(|o| {
                Vec3::new(
                    (o & 1) as f64 * h + 0.05 * h + j[o * 3],
                    ((o >> 1) & 1) as f64 * h + 0.05 * h + j[o * 3 + 1],
                    ((o >> 2) & 1) as f64 * h + 0.05 * h + j[o * 3 + 2],
                )
            })
            .collect::<Vec<_>>()
    });
    let extras = proptest::collection::vec((0.0..box_len, 0.0..box_len, 0.0..box_len), 8..max_n);
    (anchors, extras).prop_map(|(anchor_pts, extra_pts)| {
        anchor_pts
            .into_iter()
            .chain(extra_pts.into_iter().map(|(x, y, z)| Vec3::new(x, y, z)))
            .enumerate()
            .map(|(i, p)| (i as u64, p))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Complete periodic Voronoi cells tile the box exactly.
    #[test]
    fn complete_cells_partition_the_periodic_box(
        particles in particles_strategy(60, 5.0)
    ) {
        let domain = Aabb::cube(5.0);
        let (block, stats) = tess::tessellate_serial(
            &particles,
            domain,
            [true; 3],
            // generous ghost: sparse random sets have big cells
            &TessParams::default().with_ghost(5.0),
        );
        prop_assert_eq!(stats.cells as usize, particles.len());
        let total: f64 = block.cells.iter().map(|c| c.volume).sum();
        prop_assert!((total - domain.volume()).abs() < 1e-6 * domain.volume(),
            "total {} vs {}", total, domain.volume());
        // every cell contains its own site
        for c in &block.cells {
            prop_assert!(c.volume > 0.0);
            prop_assert!(c.area > 0.0);
            // isoperimetric inequality per convex cell
            prop_assert!(c.area.powi(3) >= 36.0 * std::f64::consts::PI * c.volume.powi(2) * 0.999);
        }
    }

    /// Face-neighbor relations are symmetric: if q is a face neighbor of
    /// p's cell, then p is a face neighbor of q's cell.
    #[test]
    fn face_adjacency_is_symmetric(
        particles in particles_strategy(50, 5.0)
    ) {
        let (block, _) = tess::tessellate_serial(
            &particles,
            Aabb::cube(5.0),
            [true; 3],
            &TessParams::default().with_ghost(5.0),
        );
        // Tolerance-based clipping can keep an eps-scale sliver face in one
        // cell of a near-tangent pair and not the other, so symmetry is
        // only guaranteed for faces with non-degenerate area.
        let min_area = 1e-7;
        let all_sets: std::collections::HashMap<u64, std::collections::BTreeSet<u64>> =
            block.cells.iter().map(|c| {
                (block.site_id_of(c),
                 c.faces.iter().filter(|f| f.neighbor != tess::NO_NEIGHBOR)
                    .map(|f| f.neighbor).collect())
            }).collect();
        for c in &block.cells {
            let site = block.site_id_of(c);
            for f in &c.faces {
                if f.neighbor == tess::NO_NEIGHBOR {
                    continue;
                }
                let area = meshing_universe::geometry::measures::polygon_area(
                    &block.face_points(f),
                );
                if area < min_area {
                    continue;
                }
                prop_assert!(
                    all_sets.get(&f.neighbor).is_some_and(|s| s.contains(&site)),
                    "asymmetric adjacency {} -> {} (face area {})", site, f.neighbor, area
                );
            }
        }
    }

    /// Volume thresholding commutes: tessellate-then-filter equals
    /// tessellate-with-min_volume.
    #[test]
    fn culling_matches_postfiltering(
        particles in particles_strategy(50, 5.0)
    ) {
        let domain = Aabb::cube(5.0);
        let base = TessParams::default().with_ghost(5.0);
        let (full, _) = tess::tessellate_serial(&particles, domain, [true; 3], &base);
        let threshold = 5.0f64.powi(3) / particles.len() as f64; // mean volume
        let culled_params = TessParams { min_volume: Some(threshold), ..base };
        let (culled, _) = tess::tessellate_serial(&particles, domain, [true; 3], &culled_params);

        let expected: std::collections::BTreeSet<u64> = full.cells.iter()
            .filter(|c| c.volume >= threshold)
            .map(|c| full.site_id_of(c)).collect();
        let got: std::collections::BTreeSet<u64> = culled.cells.iter()
            .map(|c| culled.site_id_of(c)).collect();
        prop_assert_eq!(expected, got);
    }

    /// Adaptive ghost exchange conserves volume: on a periodic box every
    /// cell ends up certified and the cell volumes sum to the box volume
    /// to 1e-9 relative tolerance, across particle counts and seeds.
    #[test]
    fn adaptive_ghost_conserves_periodic_volume(
        n in 3usize..=5,
        seed in any::<u64>(),
        amp in 0.05f64..0.45,
    ) {
        let particles = jittered_lattice(n, seed, amp);
        let domain = Aabb::cube(n as f64);
        let (block, stats) = tess::tessellate_serial(
            &particles,
            domain,
            [true; 3],
            // explicitly the streamed kernel: the conservation bound must
            // hold on the default production path regardless of TESS_KERNEL
            &TessParams { ghost: GhostSpec::adaptive(), ..TessParams::default() }
                .with_kernel(KernelMode::Stream),
        );
        prop_assert_eq!(stats.incomplete, 0, "adaptive left cells uncertified");
        prop_assert_eq!(stats.cells as usize, particles.len());
        let total: f64 = block.cells.iter().map(|c| c.volume).sum();
        prop_assert!(
            (total - domain.volume()).abs() < 1e-9 * domain.volume(),
            "total {} vs box {} ({} rounds)", total, domain.volume(), stats.ghost_rounds
        );
    }

    /// The neighbor stream is a faithful sorted enumeration: against a
    /// brute-force distance oracle it yields *exactly* the candidates
    /// within the bound, in non-decreasing distance, with exact f64
    /// distances (the f32 prefilter may never drop a true candidate).
    #[test]
    fn neighbor_stream_matches_the_brute_force_distance_oracle(
        particles in particles_strategy(40, 5.0),
        cidx in 0usize..48,
        bound in 0.5f64..9.0,
    ) {
        use meshing_universe::tess::grid::{CandidateGrid, StreamScratch};
        let region = Aabb::cube(5.0);
        let pts: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
        let grid = CandidateGrid::build(region, &pts, 2.0);
        let skip = (cidx % pts.len()) as u32;
        let center = pts[skip as usize];
        let bound2 = bound * bound;

        let mut oracle: Vec<(f64, u32)> = pts.iter().enumerate()
            .filter(|&(i, _)| i as u32 != skip)
            .map(|(i, p)| (p.dist2(center), i as u32))
            .filter(|&(d2, _)| d2 <= bound2)
            .collect();
        oracle.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut scratch = StreamScratch::default();
        let mut stream = grid.stream(&pts, center, skip, &mut scratch);
        let mut got: Vec<(f64, u32)> = Vec::new();
        let mut prev = 0.0f64;
        while let Some((d2, i)) = stream.next(bound2) {
            prop_assert!(d2 >= prev, "distance went backwards: {d2} after {prev}");
            prev = d2;
            prop_assert_eq!(d2.to_bits(), pts[i as usize].dist2(center).to_bits(),
                "stream distance is not the exact f64 distance");
            got.push((d2, i));
        }
        let got_set: std::collections::BTreeSet<u32> = got.iter().map(|&(_, i)| i).collect();
        let oracle_set: std::collections::BTreeSet<u32> = oracle.iter().map(|&(_, i)| i).collect();
        prop_assert_eq!(got_set, oracle_set, "stream missed or invented candidates");
    }

    /// Under a shrinking bound (the kernel's security radius only ever
    /// shrinks), the stream still yields every candidate within the final
    /// bound before terminating — it never stops early.
    #[test]
    fn neighbor_stream_never_terminates_before_the_final_bound(
        particles in particles_strategy(40, 5.0),
        cidx in 0usize..48,
        start in 2.0f64..8.0,
    ) {
        use meshing_universe::tess::grid::{CandidateGrid, StreamScratch};
        let region = Aabb::cube(5.0);
        let pts: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
        let grid = CandidateGrid::build(region, &pts, 2.0);
        let skip = (cidx % pts.len()) as u32;
        let center = pts[skip as usize];
        let final2 = (start * start) / 16.0;

        let mut scratch = StreamScratch::default();
        let mut stream = grid.stream(&pts, center, skip, &mut scratch);
        let mut bound2 = start * start;
        let mut emitted: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        while let Some((_, i)) = stream.next(bound2) {
            emitted.insert(i);
            // shrink the bound after every emission, as a clipping cell
            // shrinks its security radius, but never below the floor
            bound2 = (bound2 * 0.7).max(final2);
        }
        for (i, p) in pts.iter().enumerate() {
            if i as u32 == skip { continue; }
            if p.dist2(center) <= final2 {
                prop_assert!(emitted.contains(&(i as u32)),
                    "candidate {i} within the final bound was never emitted");
            }
        }
    }

    /// The geometry kernels survive degenerate inputs — duplicate,
    /// collinear, and cospherical sites — without panicking and without
    /// producing negative volumes or areas.
    #[test]
    fn degenerate_inputs_never_panic_or_go_negative(
        family in 0u8..3,
        n in 4usize..=16,
        seed in any::<u64>(),
    ) {
        use meshing_universe::geometry::convex_hull;
        use meshing_universe::tess::{
            cell::{compute_cell, CellContext, CellScratch},
            grid::CandidateGrid,
            KernelMode,
        };

        let points = degenerate_points(family, n, seed);
        let ids: Vec<u64> = (0..points.len() as u64).collect();
        let region = Aabb::cube(4.0);
        let grid = CandidateGrid::build(region, &points, 2.0);
        let mut scratch = CellScratch::default();
        for kernel in [KernelMode::Ring, KernelMode::Stream] {
            let ctx = CellContext {
                points: &points,
                ids: &ids,
                grid: &grid,
                region: &region,
                clip_box: &region,
                canon_extent: None,
                eps: 1e-9,
                kernel,
                canon_incomplete: true,
            };
            for (i, &site) in points.iter().enumerate() {
                let cell = compute_cell(&ctx, site, i as u32, &mut scratch);
                let vol = cell.poly.volume();
                let area = cell.poly.surface_area();
                prop_assert!(vol.is_finite() && vol >= -1e-9,
                    "family {} site {} ({:?}): negative volume {}", family, i, kernel, vol);
                prop_assert!(area.is_finite() && area >= -1e-9,
                    "family {} site {} ({:?}): negative area {}", family, i, kernel, area);
            }
        }
        // quickhull must reject degeneracy gracefully, never panic; when a
        // hull does come out (duplicates of a full-dimensional set), its
        // measures are non-negative.
        if let Ok(hull) = convex_hull(&points, 1e-9) {
            prop_assert!(hull.volume() >= -1e-9);
            prop_assert!(hull.surface_area() >= -1e-9);
        }
    }

    /// Any decomposition — regular grid or particle-balanced k-d, any
    /// block count, any domain shape — exactly partitions the domain:
    /// block volumes sum to the domain volume, block interiors are
    /// pairwise disjoint, `block_of_point` lands every point in a block
    /// whose bounds contain it, and neighbor links are symmetric under
    /// the inverse periodic image.
    #[test]
    fn decompositions_partition_the_domain(
        kd in any::<bool>(),
        nblocks in 1usize..=12,
        ext in (1.0f64..20.0, 1.0f64..20.0, 1.0f64..20.0),
        periodic in (any::<bool>(), any::<bool>(), any::<bool>()),
        seed in any::<u64>(),
        npts in 16usize..=120,
    ) {
        use meshing_universe::diy::decomposition::DecompScheme;
        use rand::{Rng, SeedableRng};

        let domain = Aabb::new(Vec3::ZERO, Vec3::new(ext.0, ext.1, ext.2));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pt = |rng: &mut rand_chacha::ChaCha8Rng| Vec3::new(
            rng.gen_range(0.0..ext.0),
            rng.gen_range(0.0..ext.1),
            rng.gen_range(0.0..ext.2),
        );
        let points: Vec<Vec3> = (0..npts).map(|_| pt(&mut rng)).collect();
        let scheme = if kd { DecompScheme::Kd { sample: 64 } } else { DecompScheme::Regular };
        let periodic = [periodic.0, periodic.1, periodic.2];
        let dec = scheme.build(domain, nblocks, periodic, &points);

        // Union == domain, interiors disjoint.
        let vols: f64 = (0..dec.nblocks() as u64)
            .map(|g| dec.block_bounds(g).volume())
            .sum();
        prop_assert!((vols - domain.volume()).abs() <= 1e-9 * domain.volume(),
            "block volumes sum to {} but the domain has {}", vols, domain.volume());
        for a in 0..dec.nblocks() as u64 {
            let ba = dec.block_bounds(a);
            prop_assert!(domain.contains_closed(ba.min) && domain.contains_closed(ba.max),
                "block {a} {ba:?} leaks outside the domain");
            for b in (a + 1)..dec.nblocks() as u64 {
                let bb = dec.block_bounds(b);
                let overlap: f64 = (0..3).map(|d| {
                    (ba.max[d].min(bb.max[d]) - ba.min[d].max(bb.min[d])).max(0.0)
                }).product();
                prop_assert!(overlap <= 1e-9 * domain.volume(),
                    "blocks {a} and {b} overlap with volume {overlap}");
            }
        }

        // Ownership agrees with bounds (closed, since faces are shared).
        for p in points.iter().chain((0..32).map(|_| pt(&mut rng)).collect::<Vec<_>>().iter()) {
            let gid = dec.block_of_point(*p);
            prop_assert!(gid < dec.nblocks() as u64);
            prop_assert!(dec.block_bounds(gid).contains_closed(*p),
                "point {p:?} assigned to block {gid} whose bounds exclude it");
        }

        // Neighbor links are symmetric under the inverse periodic image.
        for a in 0..dec.nblocks() as u64 {
            for n in dec.neighbors(a) {
                let back = dec.neighbors(n.gid);
                prop_assert!(
                    back.iter().any(|m| m.gid == a && (m.xform + n.xform).norm() < 1e-9),
                    "link {a} -> {} (xform {:?}) has no inverse", n.gid, n.xform
                );
            }
        }
    }
}
