//! Differential query-oracle and snapshot-consistency suite for the
//! resident mesh service.
//!
//! The service's point lookup streams candidates from a grid in
//! non-decreasing exact distance and stops at the first emission; the
//! oracle here is the definition it must match: brute-force argmin of
//! exact f64 distance over **every** cell seed × **every** periodic image
//! (not just the indexed ones), ties broken canonically by smallest site
//! id. Box extraction must equal a plain filter over all cells, and
//! region summaries over any partition of the domain must conserve the
//! total volume to 1e-9. All of it must hold bit-for-bit across rank
//! counts 1/2/4 × pool widths 1/2/8 × both candidate kernels.
//!
//! The snapshot-consistency half races queries against an in-flight
//! update: every response must carry a valid epoch and match that epoch's
//! from-scratch oracle mesh exactly — never a mixture of two snapshots.
//!
//! Pool width is process-global state, so tests that reconfigure it
//! serialize through one mutex and restore the previous width on exit.

use std::collections::BTreeMap;
use std::sync::Mutex;

use meshing_universe::diy::comm::Runtime;
use meshing_universe::diy::decomposition::{Assignment, DecompScheme, Decomposition};
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::rayon::set_max_parallelism;
use meshing_universe::tess::grid::StreamScratch;
use meshing_universe::tess::{
    self, Answer, GhostSpec, KernelMode, MeshService, MeshSnapshot, PointHit, Query, ServiceConfig,
    TessParams, Update,
};

const NBLOCKS: usize = 8;

/// Serializes tests that reconfigure the global pool width.
static POOL_WIDTH: Mutex<()> = Mutex::new(());

/// Run `f` with the pool capped at `width`, restoring the previous cap.
fn with_pool_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    let _guard = POOL_WIDTH.lock().unwrap();
    let prev = set_max_parallelism(width);
    let out = f();
    set_max_parallelism(prev);
    out
}

fn jittered(n: usize, seed: u64, amp: f64) -> Vec<(u64, Vec3)> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n * n * n)
        .map(|idx| {
            let (i, j, k) = (idx % n, (idx / n) % n, idx / (n * n));
            let p = Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5)
                + Vec3::new(
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                );
            let ng = n as f64;
            (
                idx as u64,
                Vec3::new(p.x.rem_euclid(ng), p.y.rem_euclid(ng), p.z.rem_euclid(ng)),
            )
        })
        .collect()
}

fn params(kernel: KernelMode) -> TessParams {
    TessParams {
        ghost: GhostSpec::Auto { factor: 2.5 },
        kernel,
        ..TessParams::default()
    }
}

fn spawn_service(
    particles: &[(u64, Vec3)],
    box_len: f64,
    periodic: bool,
    nranks: usize,
    kernel: KernelMode,
) -> MeshService {
    MeshService::spawn(
        Aabb::cube(box_len),
        [periodic; 3],
        particles,
        ServiceConfig::new(nranks, NBLOCKS)
            .with_workers(2)
            .with_params(params(kernel)),
    )
}

/// Brute-force nearest-seed oracle: exact f64 distance over every cell
/// seed × every periodic image offset in {-1,0,1}³, argmin with ties
/// broken by smallest site id. The distance is computed as
/// `image.dist2(query)` — the same expression (modulo an exact sign flip
/// under squaring) the streaming kernel evaluates — so agreement is
/// required bit-for-bit, not just approximately.
fn oracle_point(snap: &MeshSnapshot, p: Vec3) -> Option<PointHit> {
    let q = snap.wrap_query(p);
    let ext = snap.dec.domain.extent();
    let offs = |a: usize| -> &'static [i32] {
        if snap.dec.periodic[a] {
            &[-1, 0, 1]
        } else {
            &[0]
        }
    };
    let mut best: Option<(f64, u64, u64, u32)> = None; // (d2, site, gid, cell idx)
    for (&gid, b) in &snap.blocks {
        for (ci, cell) in b.cells.iter().enumerate() {
            let site = b.site_of(cell);
            let id = b.site_id_of(cell);
            for &kx in offs(0) {
                for &ky in offs(1) {
                    for &kz in offs(2) {
                        let img = site
                            + Vec3::new(kx as f64 * ext.x, ky as f64 * ext.y, kz as f64 * ext.z);
                        let d2 = img.dist2(q);
                        let better = match &best {
                            None => true,
                            Some((bd2, bid, ..)) => match d2.total_cmp(bd2) {
                                std::cmp::Ordering::Less => true,
                                std::cmp::Ordering::Equal => id < *bid,
                                std::cmp::Ordering::Greater => false,
                            },
                        };
                        if better {
                            best = Some((d2, id, gid, ci as u32));
                        }
                    }
                }
            }
        }
    }
    best.map(|(d2, site_id, gid, ci)| {
        let cell = &snap.blocks[&gid].cells[ci as usize];
        PointHit {
            site_id,
            gid,
            dist2: d2,
            volume: cell.volume,
            area: cell.area,
            faces: cell.faces.len() as u32,
            complete: cell.complete,
        }
    })
}

fn assert_hit_bits_eq(got: &PointHit, want: &PointHit, ctx: &str) {
    assert_eq!(got.site_id, want.site_id, "{ctx}: site id");
    assert_eq!(got.gid, want.gid, "{ctx}: gid");
    assert_eq!(
        got.dist2.to_bits(),
        want.dist2.to_bits(),
        "{ctx}: dist2 bits ({} vs {})",
        got.dist2,
        want.dist2
    );
    assert_eq!(got.volume.to_bits(), want.volume.to_bits(), "{ctx}: volume");
    assert_eq!(got.area.to_bits(), want.area.to_bits(), "{ctx}: area");
    assert_eq!(
        (got.faces, got.complete),
        (want.faces, want.complete),
        "{ctx}"
    );
}

/// Deterministic query mix: interior points, points outside the domain
/// (exercising the wrap path), and points pinned to block/lattice planes.
fn query_points(box_len: f64, count: usize, seed: u64) -> Vec<Vec3> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(count);
    for i in 0..count {
        let p = Vec3::new(
            rng.gen_range(0.0..box_len),
            rng.gen_range(0.0..box_len),
            rng.gen_range(0.0..box_len),
        );
        pts.push(match i % 4 {
            0 => p,
            1 => p + Vec3::new(box_len, 0.0, -box_len), // outside: wraps
            2 => Vec3::new((i % 5) as f64 * box_len / 4.0, p.y, p.z), // on planes
            _ => Vec3::new(0.0, p.y, box_len),          // on the seam / outer face
        });
    }
    pts
}

/// Cell fingerprint: (volume bits, area bits, face neighbors).
type CellBits = (u64, u64, Vec<u64>);

fn mesh_bits(blocks: &BTreeMap<u64, tess::MeshBlock>) -> BTreeMap<u64, CellBits> {
    let mut mesh = BTreeMap::new();
    for b in blocks.values() {
        for c in &b.cells {
            let bits = (
                c.volume.to_bits(),
                c.area.to_bits(),
                c.faces.iter().map(|f| f.neighbor).collect(),
            );
            assert!(mesh.insert(b.site_id_of(c), bits).is_none());
        }
    }
    mesh
}

/// The tentpole differential: batched point lookups through the service
/// match the brute-force oracle bit-for-bit across 1/2/4 ranks × pool
/// widths 1/2/8 × both candidate kernels, and every configuration
/// publishes the identical mesh.
#[test]
fn point_lookups_match_oracle_across_ranks_pools_kernels() {
    let particles = jittered(4, 11, 0.3);
    let queries = query_points(4.0, 24, 99);
    let mut reference_mesh: Option<BTreeMap<u64, CellBits>> = None;
    for &nranks in &[1usize, 2, 4] {
        for &width in &[1usize, 2, 8] {
            for &kernel in &[KernelMode::Ring, KernelMode::Stream] {
                let ctx = format!("ranks={nranks} pool={width} kernel={kernel:?}");
                with_pool_width(width, || {
                    let svc = spawn_service(&particles, 4.0, true, nranks, kernel);
                    let snap = svc.snapshot();
                    assert_eq!(snap.epoch, 1, "{ctx}");
                    let bits = mesh_bits(&snap.blocks);
                    match &reference_mesh {
                        None => reference_mesh = Some(bits),
                        Some(r) => assert_eq!(&bits, r, "{ctx}: mesh differs"),
                    }
                    // one batched submission wave, then compare each
                    let pending: Vec<_> = queries
                        .iter()
                        .map(|&p| svc.submit(Query::Point(p)).expect("open"))
                        .collect();
                    for (p, pend) in queries.iter().zip(pending) {
                        let r = pend.wait();
                        assert_eq!(r.epoch, 1, "{ctx}");
                        let Answer::Point(got) = r.answer else {
                            panic!("{ctx}: point query returned non-point answer")
                        };
                        let want = oracle_point(&snap, *p);
                        match (&got, &want) {
                            (Some(g), Some(w)) => {
                                assert_hit_bits_eq(g, w, &format!("{ctx} q={p:?}"))
                            }
                            _ => panic!("{ctx}: hit mismatch {got:?} vs {want:?}"),
                        }
                    }
                });
            }
        }
    }
}

/// Box extraction equals a plain filter over all cells, octant region
/// summaries partition the domain (volumes conserve to 1e-9, counts and
/// site sets partition exactly).
#[test]
fn box_extraction_and_region_partition_match_oracle() {
    let particles = jittered(4, 23, 0.3);
    let svc = spawn_service(&particles, 4.0, true, 2, KernelMode::Stream);
    let snap = svc.snapshot();

    // Differential: random boxes vs an independent filter over all cells.
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    for _ in 0..16 {
        let lo = Vec3::new(
            rng.gen_range(-0.5..3.5),
            rng.gen_range(-0.5..3.5),
            rng.gen_range(-0.5..3.5),
        );
        let ext = rng.gen_range(0.25..3.0);
        let query = Aabb::new(lo, lo + Vec3::splat(ext));
        let r = svc.query(Query::BoxCells(query)).expect("open");
        let Answer::BoxCells(got) = r.answer else {
            panic!("box query returned non-box answer")
        };
        let mut want: Vec<(u64, u64, u64)> = Vec::new(); // (site, vol bits, area bits)
        for (&gid, b) in &snap.blocks {
            let _ = gid;
            for c in &b.cells {
                if query.contains(b.site_of(c)) {
                    want.push((b.site_id_of(c), c.volume.to_bits(), c.area.to_bits()));
                }
            }
        }
        want.sort();
        let got_key: Vec<(u64, u64, u64)> = got
            .iter()
            .map(|c| (c.site_id, c.volume.to_bits(), c.area.to_bits()))
            .collect();
        assert_eq!(got_key, want, "box {query:?}");
    }

    // Conservation: the eight octants partition the domain exactly.
    let mut vol_sum = 0.0;
    let mut cell_sum = 0u64;
    let mut sites_seen = Vec::new();
    for oct in 0..8 {
        let lo = Vec3::new(
            if oct & 1 == 0 { 0.0 } else { 2.0 },
            if oct & 2 == 0 { 0.0 } else { 2.0 },
            if oct & 4 == 0 { 0.0 } else { 2.0 },
        );
        let b = Aabb::new(lo, lo + Vec3::splat(2.0));
        let r = svc.query(Query::Region(b)).expect("open");
        let Answer::Region(s) = r.answer else {
            panic!("region query returned non-region answer")
        };
        vol_sum += s.volume;
        cell_sum += s.cells;
        let r = svc.query(Query::BoxCells(b)).expect("open");
        let Answer::BoxCells(cells) = r.answer else {
            panic!()
        };
        assert_eq!(cells.len() as u64, s.cells, "octant {oct}");
        sites_seen.extend(cells.iter().map(|c| c.site_id));
    }
    assert_eq!(cell_sum, snap.total_cells);
    assert!(
        (vol_sum - snap.total_volume).abs() <= 1e-9 * snap.total_volume,
        "octant volumes {vol_sum} vs total {}",
        snap.total_volume
    );
    // Half-open boxes ⇒ every site in exactly one octant.
    sites_seen.sort_unstable();
    let n = sites_seen.len();
    sites_seen.dedup();
    assert_eq!(sites_seen.len(), n, "a site landed in two octants");
    assert_eq!(n as u64, snap.total_cells);
}

/// Exact f64 ties resolve to the smallest site id, with the tie distance
/// reproduced exactly: face-plane queries on an unjittered lattice tie
/// two (or four) sites, seam queries tie a primary site against a
/// periodic image, and the corner ties all eight images.
#[test]
fn exact_ties_break_to_smallest_site_id() {
    let n = 4usize;
    // Unjittered lattice: sites at (i+0.5, j+0.5, k+0.5), id = i + 4j + 16k.
    let particles: Vec<(u64, Vec3)> = (0..n * n * n)
        .map(|idx| {
            let (i, j, k) = (idx % n, (idx / n) % n, idx / (n * n));
            (
                idx as u64,
                Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5),
            )
        })
        .collect();
    let svc = spawn_service(&particles, 4.0, true, 2, KernelMode::Stream);
    let snap = svc.snapshot();

    // (query, winner site id, exact tie distance²)
    let cases = [
        // face plane x=1.0: ties sites 0 (x=0.5) and 1 (x=1.5)
        (Vec3::new(1.0, 0.5, 0.5), 0u64, 0.25f64),
        // interior face plane: ties sites 1 and 2
        (Vec3::new(2.0, 0.5, 0.5), 1, 0.25),
        // periodic seam x=0.0: site 0 at 0.5 ties image of site 3 at -0.5
        (Vec3::new(0.0, 0.5, 0.5), 0, 0.25),
        // edge at x=y=2.0: four-way tie between sites 5, 6, 9, 10
        (Vec3::new(2.0, 2.0, 0.5), 5, 0.5),
        // domain corner: eight-way periodic tie, site 0 wins
        (Vec3::new(0.0, 0.0, 0.0), 0, 0.75),
        // outside the domain, wraps onto the same corner tie
        (Vec3::new(4.0, 4.0, 8.0), 0, 0.75),
    ];
    for (q, want_site, want_d2) in cases {
        let r = svc.query(Query::Point(q)).expect("open");
        let Answer::Point(Some(hit)) = r.answer else {
            panic!("no hit at {q:?}")
        };
        assert_eq!(hit.site_id, want_site, "tie at {q:?} broke non-canonically");
        assert_eq!(
            hit.dist2.to_bits(),
            want_d2.to_bits(),
            "tie distance at {q:?}: {} vs {want_d2}",
            hit.dist2
        );
        let want = oracle_point(&snap, q).unwrap();
        assert_hit_bits_eq(&hit, &want, &format!("tie {q:?}"));
    }
}

fn partition(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    asn: &Assignment,
    rank: usize,
) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
    let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> =
        asn.blocks_of_rank(rank).map(|g| (g, Vec::new())).collect();
    for &(id, p) in particles {
        let gid = dec.block_of_point(p);
        if let Some(v) = local.get_mut(&gid) {
            v.push((id, p));
        }
    }
    local
}

/// From-scratch oracle snapshot for one particle set, built outside the
/// service on an independent runtime.
fn oracle_snapshot(
    epoch: u64,
    particles: &[(u64, Vec3)],
    box_len: f64,
    kernel: KernelMode,
) -> MeshSnapshot {
    // Same scheme as the service under test (TESS_DECOMP): the oracle
    // must recompute the exact mesh the service published.
    let positions: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
    let dec = DecompScheme::from_env().build(Aabb::cube(box_len), NBLOCKS, [true; 3], &positions);
    let dec_ref = &dec;
    let rows = Runtime::run(2, move |world| {
        let asn = Assignment::new(NBLOCKS, world.nranks());
        let local = partition(particles, dec_ref, &asn, world.rank());
        let r = tess::tessellate(world, dec_ref, &asn, &local, &params(kernel));
        (r.blocks, r.stats)
    });
    let mut blocks = BTreeMap::new();
    let mut stats = tess::TessStats::default();
    for (bs, s) in rows {
        blocks.extend(bs);
        stats = stats.merge(s);
    }
    MeshSnapshot::build(epoch, dec, blocks, stats)
}

/// One raced query/update round against a freshly spawned service;
/// `oracles` are the from-scratch epoch-1/epoch-2 meshes.
fn race_one_config(
    before: &[(u64, Vec3)],
    upserts: &[(u64, Vec3)],
    oracles: &[MeshSnapshot; 2],
    nranks: usize,
    kernel: KernelMode,
    ctx: &str,
) {
    let svc = spawn_service(before, 4.0, true, nranks, kernel);
    let queries = query_points(4.0, 40, 5);
    let mut observed: Vec<(Query, tess::Response)> = Vec::new();
    std::thread::scope(|scope| {
        let svc = &svc;
        let mut readers = Vec::new();
        for t in 0..3usize {
            let queries = &queries;
            readers.push(scope.spawn(move || {
                let mut out = Vec::new();
                for (i, &p) in queries.iter().enumerate() {
                    let q = match (t + i) % 5 {
                        0 => Query::BoxCells(Aabb::new(p - Vec3::splat(0.7), p)),
                        1 => Query::Region(Aabb::new(
                            Vec3::new(p.x.min(0.0), p.y.min(0.0), p.z.min(0.0)),
                            Vec3::new(p.x.max(0.0), p.y.max(0.0), p.z.max(0.0)),
                        )),
                        _ => Query::Point(p),
                    };
                    let r = svc.query(q.clone()).expect("open");
                    out.push((q, r));
                }
                out
            }));
        }
        let rep = svc.update(Update::Delta {
            upserts: upserts.to_vec(),
            removes: Vec::new(),
        });
        assert_eq!(rep.epoch, 2);
        for h in readers {
            observed.extend(h.join().expect("reader"));
        }
    });

    // The service's own published mesh must equal the post-update oracle.
    assert_eq!(
        mesh_bits(&svc.snapshot().blocks),
        mesh_bits(&oracles[1].blocks),
        "{ctx}: post-update service mesh differs from oracle"
    );

    let mut scratch = StreamScratch::default();
    let mut per_epoch = [0usize; 2];
    for (q, r) in &observed {
        assert!(r.epoch == 1 || r.epoch == 2, "invalid epoch {}", r.epoch);
        let oracle = &oracles[(r.epoch - 1) as usize];
        per_epoch[(r.epoch - 1) as usize] += 1;
        let want = oracle.answer(q, &mut scratch);
        assert_eq!(
            r.answer, want,
            "{ctx}: epoch {} answer diverged for {q:?}",
            r.epoch
        );
    }
    assert_eq!(per_epoch[0] + per_epoch[1], observed.len());
    // Exactly-once accounting over the raced run.
    let stats = svc.shutdown();
    assert_eq!(stats.enqueued, stats.answered);
    assert_eq!(stats.rejected, 0);
}

/// Snapshot consistency: queries raced against an in-flight update must
/// match either the pre-update or the post-update oracle mesh exactly —
/// identified by the response epoch — never a blend of the two, across
/// 1/2/4 ranks × pool widths 1/2/8 × both kernels.
#[test]
fn raced_queries_match_exactly_one_epoch_oracle() {
    let before = jittered(4, 31, 0.3);
    // The delta moves every fourth particle.
    let upserts: Vec<(u64, Vec3)> = before
        .iter()
        .filter(|(id, _)| id % 4 == 0)
        .map(|&(id, p)| {
            let shift = 0.11 * ((id % 7) as f64 - 3.0) / 7.0;
            (
                id,
                Vec3::new(
                    (p.x + shift).rem_euclid(4.0),
                    (p.y - shift).rem_euclid(4.0),
                    (p.z + 2.0 * shift).rem_euclid(4.0),
                ),
            )
        })
        .collect();
    let mut after = before.clone();
    for &(id, p) in &upserts {
        after[id as usize] = (id, p);
    }
    for &kernel in &[KernelMode::Ring, KernelMode::Stream] {
        // The oracle meshes depend only on the particle set (mesh bits
        // are rank/pool/kernel invariant), so build them once per kernel.
        let oracles = [
            oracle_snapshot(1, &before, 4.0, kernel),
            oracle_snapshot(2, &after, 4.0, kernel),
        ];
        for &nranks in &[1usize, 2, 4] {
            for &width in &[1usize, 2, 8] {
                let ctx = format!("ranks={nranks} pool={width} kernel={kernel:?}");
                with_pool_width(width, || {
                    race_one_config(&before, &upserts, &oracles, nranks, kernel, &ctx)
                });
            }
        }
    }
}
