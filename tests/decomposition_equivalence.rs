//! Decomposition-scheme equivalence: the merged Voronoi mesh must be
//! bit-identical whether the domain was cut into a regular grid or a
//! particle-balanced k-d tree.
//!
//! Why this can hold at all: certified cells are canonically re-clipped
//! from a site-centered cube whose half-extent the driver derives from the
//! global *domain* (never from a block), in canonical candidate order, so
//! a cell's floating-point history is a function of the particle set
//! alone. Block shape only decides *which rank* computes a cell and which
//! particles arrive as ghosts — and the ghost exchange's proximity links
//! guarantee every particle inside a certified cell's security ball is
//! present under either scheme. The one precondition is that every cell
//! certifies (`incomplete == 0`): dropped cells are decided by the
//! block-relative region, which *is* scheme-dependent.
//!
//! Matrix: {1, 2, 4, 8} ranks × {ring, stream} kernels × {explicit,
//! adaptive} ghosts, all compared against one regular-grid reference.

use std::collections::BTreeMap;

use bench_harness::corpus::ClusterSpec;
use meshing_universe::diy::comm::Runtime;
use meshing_universe::diy::decomposition::{Assignment, DecompScheme, Decomposition};
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::tess::{self, GhostSpec, KernelMode, TessParams};

/// Bit-level fingerprint of one cell: volume and area as raw f64 bits plus
/// the face-neighbor ids in face order.
type CellBits = (u64, u64, Vec<u64>);

fn partition(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    asn: &Assignment,
    rank: usize,
) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
    let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> =
        asn.blocks_of_rank(rank).map(|g| (g, Vec::new())).collect();
    for &(id, p) in particles {
        let gid = dec.block_of_point(p);
        if let Some(v) = local.get_mut(&gid) {
            v.push((id, p));
        }
    }
    local
}

/// The assignment each scheme is meant to run under: block-cyclic for the
/// regular grid, particle-count-weighted for k-d.
fn assignment_for(
    scheme: DecompScheme,
    dec: &Decomposition,
    particles: &[(u64, Vec3)],
    nranks: usize,
) -> Assignment {
    match scheme {
        DecompScheme::Regular => Assignment::new(dec.nblocks(), nranks),
        DecompScheme::Kd { .. } => {
            let mut counts = vec![0u64; dec.nblocks()];
            for &(_, p) in particles {
                counts[dec.block_of_point(p) as usize] += 1;
            }
            Assignment::weighted(&counts, nranks)
        }
    }
}

/// Tessellate the corpus under `scheme` on `nranks` ranks; merge cells
/// keyed by site id. Asserts every cell certified — the precondition for
/// cross-scheme comparability.
fn mesh_bits(
    particles: &[(u64, Vec3)],
    side: f64,
    scheme: DecompScheme,
    nranks: usize,
    params: &TessParams,
    label: &str,
) -> BTreeMap<u64, CellBits> {
    let positions: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
    let dec = scheme.build(Aabb::cube(side), 8, [true; 3], &positions);
    let collected = Runtime::run(nranks, move |world| {
        let asn = assignment_for(scheme, &dec, particles, world.nranks());
        let local = partition(particles, &dec, &asn, world.rank());
        let r = tess::tessellate(world, &dec, &asn, &local, params);
        let stats = tess::driver::global_stats(world, r.stats);
        assert_eq!(
            stats.incomplete, 0,
            "{label}: {} uncertified cells — corpus too sparse for the \
             adaptive cap; scheme equivalence only holds when no cell is \
             dropped",
            stats.incomplete
        );
        r.blocks
            .values()
            .flat_map(|b| {
                b.cells
                    .iter()
                    .map(|c| {
                        (
                            b.site_id_of(c),
                            (
                                c.volume.to_bits(),
                                c.area.to_bits(),
                                c.faces.iter().map(|f| f.neighbor).collect::<Vec<u64>>(),
                            ),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    });
    let mut mesh = BTreeMap::new();
    for (id, bits) in collected.into_iter().flatten() {
        assert!(
            mesh.insert(id, bits).is_none(),
            "{label}: cell {id} published twice"
        );
    }
    mesh
}

/// Equality with a first-difference report a human can act on.
fn assert_same_mesh(
    reference: &BTreeMap<u64, CellBits>,
    got: &BTreeMap<u64, CellBits>,
    label: &str,
) {
    if reference == got {
        return;
    }
    for (id, r) in reference {
        match got.get(id) {
            None => panic!("{label}: cell {id} missing (reference has it)"),
            Some(g) if g != r => panic!(
                "{label}: first differing cell {id}\n  reference: vol {} area {} nbrs {:?}\n  \
                 got:       vol {} area {} nbrs {:?}",
                f64::from_bits(r.0),
                f64::from_bits(r.1),
                r.2,
                f64::from_bits(g.0),
                f64::from_bits(g.1),
                g.2
            ),
            Some(_) => {}
        }
    }
    let extra: Vec<u64> = got
        .keys()
        .filter(|id| !reference.contains_key(id))
        .copied()
        .collect();
    panic!("{label}: extra cells not in reference: {extra:?}");
}

const KD: DecompScheme = DecompScheme::Kd {
    sample: DecompScheme::DEFAULT_KD_SAMPLE,
};

/// One corpus shared by the whole matrix: corner-heavy clustering, dense
/// enough that every void cell certifies under both schemes' caps.
fn corpus() -> (Vec<(u64, Vec3)>, f64) {
    let spec = ClusterSpec::corner_heavy(16.0, 24, 40, 42);
    (spec.generate(), spec.side)
}

/// The largest explicit radius that is still within both schemes' 1-ring
/// reach (the proximity-link guarantee the exchange relies on).
fn explicit_radius(particles: &[(u64, Vec3)], side: f64) -> f64 {
    let positions: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
    let reg = DecompScheme::Regular.build(Aabb::cube(side), 8, [true; 3], &positions);
    let kd = KD.build(Aabb::cube(side), 8, [true; 3], &positions);
    0.99 * reg.min_block_extent().min(kd.min_block_extent())
}

#[test]
fn kd_matches_regular_across_ranks_kernels_and_ghost_modes() {
    let (particles, side) = corpus();
    let explicit = explicit_radius(&particles, side);
    for kernel in [KernelMode::Ring, KernelMode::Stream] {
        for (ghost_name, ghost) in [
            ("explicit", GhostSpec::Explicit(explicit)),
            (
                "adaptive",
                GhostSpec::Adaptive {
                    initial_factor: 0.5,
                    max_rounds: 8,
                },
            ),
        ] {
            let params = TessParams {
                ghost,
                kernel,
                incremental_retess: true,
                ..TessParams::default()
            };
            let reference = mesh_bits(
                &particles,
                side,
                DecompScheme::Regular,
                1,
                &params,
                "regular@1",
            );
            assert!(!reference.is_empty());
            for nranks in [1usize, 2, 4, 8] {
                let label = format!("kd@{nranks} {kernel:?} {ghost_name}");
                let kd = mesh_bits(&particles, side, KD, nranks, &params, &label);
                assert_same_mesh(&reference, &kd, &label);
            }
            let label = format!("regular@8 {kernel:?} {ghost_name}");
            let reg8 = mesh_bits(&particles, side, DecompScheme::Regular, 8, &params, &label);
            assert_same_mesh(&reference, &reg8, &label);
        }
    }
}

/// The weighted assignment is part of the scheme A/B, but must never leak
/// into the mesh: rerun kd under the *unweighted* block-cyclic assignment
/// and demand the same bits.
#[test]
fn assignment_choice_cannot_change_the_mesh() {
    let (particles, side) = corpus();
    let params = TessParams {
        ghost: GhostSpec::Adaptive {
            initial_factor: 0.5,
            max_rounds: 8,
        },
        ..TessParams::default()
    };
    let weighted = mesh_bits(&particles, side, KD, 4, &params, "kd weighted");
    let positions: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
    let dec = KD.build(Aabb::cube(side), 8, [true; 3], &positions);
    let particles_ref = &particles;
    let collected = Runtime::run(4, move |world| {
        let asn = Assignment::new(dec.nblocks(), world.nranks());
        let local = partition(particles_ref, &dec, &asn, world.rank());
        let r = tess::tessellate(world, &dec, &asn, &local, &params);
        r.blocks
            .values()
            .flat_map(|b| {
                b.cells
                    .iter()
                    .map(|c| {
                        (
                            b.site_id_of(c),
                            (
                                c.volume.to_bits(),
                                c.area.to_bits(),
                                c.faces.iter().map(|f| f.neighbor).collect::<Vec<u64>>(),
                            ),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    });
    let unweighted: BTreeMap<u64, CellBits> = collected.into_iter().flatten().collect();
    assert_same_mesh(&weighted, &unweighted, "kd unweighted assignment");
}
