//! Differential kernel-oracle suite: the streamed, distance-ordered cell
//! kernel against the legacy ring scan.
//!
//! The two kernels discover candidates in completely different orders
//! (sorted incremental ring expansion with a support-function prefilter vs
//! ring-at-a-time scanning), but every kept cell is re-clipped from a
//! discovery-independent start box in canonical plane order, so the merged
//! mesh must be **bit-identical** between them — across rank counts, pool
//! widths, incremental-vs-full re-tessellation, explicit and adaptive ghost
//! protocols, and kept-incomplete configurations. Any divergence is a
//! kernel bug by definition; these tests are the oracle that pins it.
//!
//! Pool width is process-global state, so tests that reconfigure it
//! serialize through one mutex and restore the previous width on exit.

use std::collections::BTreeMap;
use std::sync::Mutex;

use meshing_universe::diy::comm::Runtime;
use meshing_universe::diy::decomposition::{Assignment, DecompScheme, Decomposition};
use meshing_universe::geometry::{Aabb, Vec3};
use meshing_universe::rayon::set_max_parallelism;
use meshing_universe::tess::{self, GhostSpec, KernelMode, TessParams};

/// Serializes tests that reconfigure the global pool width.
static POOL_WIDTH: Mutex<()> = Mutex::new(());

/// Run `f` with the pool capped at `width`, restoring the previous cap.
fn with_pool_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    let _guard = POOL_WIDTH.lock().unwrap();
    let prev = set_max_parallelism(width);
    let out = f();
    set_max_parallelism(prev);
    out
}

fn jittered(n: usize, seed: u64, amp: f64) -> Vec<(u64, Vec3)> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n * n * n)
        .map(|idx| {
            let (i, j, k) = (idx % n, (idx / n) % n, idx / (n * n));
            let p = Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5)
                + Vec3::new(
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                );
            let ng = n as f64;
            (
                idx as u64,
                Vec3::new(p.x.rem_euclid(ng), p.y.rem_euclid(ng), p.z.rem_euclid(ng)),
            )
        })
        .collect()
}

/// Build the decomposition under the `TESS_DECOMP` scheme (regular unless
/// the CI kd pass overrides it): the kernel differential oracle must hold
/// on both block geometries.
fn decomp(side: f64, periodic: bool, particles: &[(u64, Vec3)]) -> Decomposition {
    let positions: Vec<Vec3> = particles.iter().map(|&(_, p)| p).collect();
    DecompScheme::from_env().build(Aabb::cube(side), 8, [periodic; 3], &positions)
}

fn partition(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    asn: &Assignment,
    rank: usize,
) -> BTreeMap<u64, Vec<(u64, Vec3)>> {
    let mut local: BTreeMap<u64, Vec<(u64, Vec3)>> =
        asn.blocks_of_rank(rank).map(|g| (g, Vec::new())).collect();
    for &(id, p) in particles {
        let gid = dec.block_of_point(p);
        if let Some(v) = local.get_mut(&gid) {
            v.push((id, p));
        }
    }
    local
}

/// Bit-level fingerprint of one cell: volume and area as raw f64 bits plus
/// the face-neighbor ids in face order.
type CellBits = (u64, u64, Vec<u64>);

/// Tessellate on `nranks` ranks; merge every cell keyed by site id and
/// return the globally reduced stats alongside.
fn mesh_and_stats(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    nranks: usize,
    params: &TessParams,
) -> (BTreeMap<u64, CellBits>, tess::TessStats) {
    let collected = Runtime::run(nranks, move |world| {
        let asn = Assignment::new(dec.nblocks(), world.nranks());
        let local = partition(particles, dec, &asn, world.rank());
        let r = tess::tessellate(world, dec, &asn, &local, params);
        let stats = tess::driver::global_stats(world, r.stats);
        let cells = r
            .blocks
            .values()
            .flat_map(|b| {
                b.cells
                    .iter()
                    .map(|c| {
                        (
                            b.site_id_of(c),
                            (
                                c.volume.to_bits(),
                                c.area.to_bits(),
                                c.faces.iter().map(|f| f.neighbor).collect::<Vec<u64>>(),
                            ),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        (cells, stats)
    });
    let stats = collected[0].1;
    let mut merged = BTreeMap::new();
    for (id, bits) in collected.into_iter().flat_map(|(cells, _)| cells) {
        let prev = merged.insert(id, bits);
        assert!(prev.is_none(), "cell {id} produced by two blocks");
    }
    (merged, stats)
}

fn mesh_bits(
    particles: &[(u64, Vec3)],
    dec: &Decomposition,
    nranks: usize,
    params: &TessParams,
) -> BTreeMap<u64, CellBits> {
    mesh_and_stats(particles, dec, nranks, params).0
}

fn ghost_modes() -> [(&'static str, GhostSpec); 2] {
    [
        ("explicit", GhostSpec::Explicit(2.5)),
        ("adaptive", GhostSpec::adaptive()),
    ]
}

#[test]
fn kernels_agree_bit_for_bit_at_every_rank_count_and_ghost_mode() {
    let n = 6;
    let particles = jittered(n, 41, 0.45);
    let dec = decomp(n as f64, true, &particles);
    with_pool_width(2, || {
        for (label, ghost) in ghost_modes() {
            let stream = TessParams {
                ghost,
                kernel: KernelMode::Stream,
                ..TessParams::default()
            };
            let ring = TessParams {
                kernel: KernelMode::Ring,
                ..stream
            };
            let reference = mesh_bits(&particles, &dec, 1, &ring);
            assert_eq!(reference.len(), n * n * n, "{label}: all cells certified");
            for nranks in [1usize, 2, 4, 8] {
                let s = mesh_bits(&particles, &dec, nranks, &stream);
                assert_eq!(
                    s, reference,
                    "{label}: stream mesh at {nranks} ranks differs from ring reference"
                );
                let r = mesh_bits(&particles, &dec, nranks, &ring);
                assert_eq!(
                    r, reference,
                    "{label}: ring mesh at {nranks} ranks differs from 1 rank"
                );
            }
        }
    });
}

#[test]
fn kernels_agree_across_pool_widths() {
    let n = 6;
    let particles = jittered(n, 43, 0.48);
    let dec = decomp(n as f64, true, &particles);
    let params = |kernel| TessParams {
        ghost: GhostSpec::adaptive(),
        kernel,
        ..TessParams::default()
    };
    let reference = with_pool_width(1, || {
        mesh_bits(&particles, &dec, 2, &params(KernelMode::Ring))
    });
    for width in [1usize, 2, 8] {
        let stream = with_pool_width(width, || {
            mesh_bits(&particles, &dec, 2, &params(KernelMode::Stream))
        });
        assert_eq!(
            stream, reference,
            "stream mesh at pool width {width} differs from the width-1 ring reference"
        );
    }
}

#[test]
fn kernels_agree_for_incremental_and_full_retessellation() {
    let n = 6;
    let particles = jittered(n, 47, 0.48);
    let dec = decomp(n as f64, true, &particles);
    // a small initial radius forces several adaptive growth rounds — the
    // regime where incremental reuse and the kernels interact
    let ghost = GhostSpec::Adaptive {
        initial_factor: 0.75,
        max_rounds: 8,
    };
    with_pool_width(2, || {
        let mut reference = None;
        for kernel in [KernelMode::Ring, KernelMode::Stream] {
            for incremental in [false, true] {
                let params = TessParams {
                    ghost,
                    kernel,
                    incremental_retess: incremental,
                    ..TessParams::default()
                };
                let (mesh, stats) = mesh_and_stats(&particles, &dec, 4, &params);
                assert!(stats.ghost_rounds >= 2, "need a multi-round run");
                let reference = reference.get_or_insert(mesh.clone());
                assert_eq!(
                    &mesh, reference,
                    "{kernel:?} incremental={incremental} diverged"
                );
            }
        }
    });
}

#[test]
fn kernels_agree_when_incomplete_cells_are_kept() {
    // keep_incomplete publishes cells that never certified; those are
    // canonically re-clipped too, so the kernels must still agree bit for
    // bit. A non-periodic domain plus a too-small explicit ghost makes
    // boundary cells genuinely incomplete.
    let n = 5;
    let particles = jittered(n, 53, 0.4);
    let dec = decomp(n as f64, false, &particles);
    with_pool_width(2, || {
        let params = |kernel| TessParams {
            ghost: GhostSpec::Explicit(1.0),
            keep_incomplete: true,
            kernel,
            ..TessParams::default()
        };
        let ring = mesh_bits(&particles, &dec, 2, &params(KernelMode::Ring));
        let stream = mesh_bits(&particles, &dec, 2, &params(KernelMode::Stream));
        assert_eq!(ring.len(), n * n * n, "kept-incomplete publishes all cells");
        assert_eq!(stream, ring, "kept-incomplete meshes diverged");
    });
}

/// Halo-like clustered set: dense Gaussian clumps plus a sparse uniform
/// background inside `[0, side)^3`. Clustering is what gives the streamed
/// kernel its edge — void cells are large and elongated, so the ring scan
/// clips entire security balls while ordered emission + the support
/// prefilter discard almost all of them. Drawn from the shared seeded
/// generator in `bench_harness::corpus` (same corpora as the benches).
use bench_harness::corpus::clustered;

#[test]
fn stream_kernel_does_less_work_for_the_same_mesh() {
    // The contrast shows on clustered multi-round adaptive runs: rounds
    // after the first recompute mostly boundary and void cells whose
    // interim polyhedra are elongated, which is exactly where ordered
    // emission + the support prefilter prune the hardest (same shape as
    // the perf_smoke workload, which uses gravitationally evolved points).
    let side = 12.0;
    let particles = clustered(side, 30, 30, 60, 59);
    let dec = decomp(side, true, &particles);
    with_pool_width(2, || {
        let params = |kernel| TessParams {
            ghost: GhostSpec::Adaptive {
                initial_factor: 0.5,
                max_rounds: 8,
            },
            kernel,
            ..TessParams::default()
        };
        let (ring_mesh, ring) = mesh_and_stats(&particles, &dec, 4, &params(KernelMode::Ring));
        let (stream_mesh, stream) =
            mesh_and_stats(&particles, &dec, 4, &params(KernelMode::Stream));
        assert_eq!(stream_mesh, ring_mesh);
        assert_eq!(stream.cells, ring.cells);
        assert_eq!(stream.cells_computed, ring.cells_computed);
        // Deterministic counters: the streamed kernel's ordered emission +
        // support-function prefilter must cut the clipped-candidate count
        // well below the ring scan's on the identical workload. (The gate
        // on the gravitationally evolved perf workload, where the contrast
        // is >2x, lives in perf_smoke; synthetic clumps cap out lower.)
        assert!(
            stream.candidates_tested * 13 < ring.candidates_tested * 10,
            "stream {} vs ring {} candidates tested (need 1.3x fewer)",
            stream.candidates_tested,
            ring.candidates_tested
        );
        assert!(
            stream.prefilter_skipped > ring.prefilter_skipped,
            "stream prefilter ({}) must fire more than the ring path's \
             canonical-reclip-only rejects ({})",
            stream.prefilter_skipped,
            ring.prefilter_skipped
        );
    });
}
